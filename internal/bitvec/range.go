package bitvec

// Word-range operations: each touches only words [lo, hi) of the receiver,
// leaving every other word untouched. The word-sliced parallel solver gives
// each worker goroutine a disjoint [lo, hi) column slice of the shared
// state matrices; because no two slices ever write the same word, the
// workers need no synchronization inside a sweep (the Go memory model makes
// writes to disjoint slice elements race-free). The bounds are word
// indices, not bit indices, and must satisfy 0 ≤ lo ≤ hi ≤ NumWords().

// CopyFromRange overwrites words [lo, hi) of v with those of o and reports
// whether any of them changed.
func (v *Vector) CopyFromRange(o *Vector, lo, hi int) bool {
	v.checkSame(o)
	changed := false
	for i := lo; i < hi; i++ {
		if v.words[i] != o.words[i] {
			v.words[i] = o.words[i]
			changed = true
		}
	}
	return changed
}

// AndRange sets v = v ∧ o on words [lo, hi) and reports whether v changed.
func (v *Vector) AndRange(o *Vector, lo, hi int) bool {
	v.checkSame(o)
	changed := false
	for i := lo; i < hi; i++ {
		w := v.words[i] & o.words[i]
		if w != v.words[i] {
			v.words[i] = w
			changed = true
		}
	}
	return changed
}

// OrRange sets v = v ∨ o on words [lo, hi) and reports whether v changed.
func (v *Vector) OrRange(o *Vector, lo, hi int) bool {
	v.checkSame(o)
	changed := false
	for i := lo; i < hi; i++ {
		w := v.words[i] | o.words[i]
		if w != v.words[i] {
			v.words[i] = w
			changed = true
		}
	}
	return changed
}

// SetAllRange sets every bit of words [lo, hi), respecting the vector's
// length in the final word.
func (v *Vector) SetAllRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		v.words[i] = ^uint64(0)
	}
	if hi == len(v.words) {
		v.trim()
	}
}

// ClearAllRange clears every bit of words [lo, hi).
func (v *Vector) ClearAllRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		v.words[i] = 0
	}
}

// OrAndNotOfRange sets v = gen ∨ (src ∧ ¬kill) on words [lo, hi) — the
// gen/kill transfer restricted to one word slice — and reports whether v
// changed.
func (v *Vector) OrAndNotOfRange(gen, src, kill *Vector, lo, hi int) bool {
	v.checkSame(gen)
	v.checkSame(src)
	v.checkSame(kill)
	changed := false
	for i := lo; i < hi; i++ {
		w := gen.words[i] | (src.words[i] &^ kill.words[i])
		if w != v.words[i] {
			v.words[i] = w
			changed = true
		}
	}
	return changed
}
