// Package bitvec provides dense, fixed-length bit vectors and the word-level
// operations the data-flow analyses in this module are built on.
//
// A Vector represents a subset of {0, …, Len()-1}. All binary operations
// require both operands to have the same length; mixing lengths is a
// programming error and panics. Operations that write a result take the
// receiver as the destination so that solvers can update state in place
// without allocating, and they report whether the destination changed,
// which is what iterative fixpoint solvers need to drive their worklists.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	wordBits = 64
	wordMask = wordBits - 1
	wordLog  = 6
)

// Vector is a fixed-length bit vector. The zero value is an empty vector of
// length 0; use New to create vectors of a given length.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed vector of length n. New panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+wordMask)>>wordLog)}
}

// FromIndices returns a vector of length n with exactly the given bits set.
func FromIndices(n int, indices ...int) *Vector {
	v := New(n)
	for _, i := range indices {
		v.Set(i)
	}
	return v
}

// Len returns the length of the vector in bits.
func (v *Vector) Len() int { return v.n }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

func (v *Vector) checkSame(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i>>wordLog]&(1<<(uint(i)&wordMask)) != 0
}

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i>>wordLog] |= 1 << (uint(i) & wordMask)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i>>wordLog] &^= 1 << (uint(i) & wordMask)
}

// SetBool sets bit i to b.
func (v *Vector) SetBool(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// SetAll sets every bit.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
}

// ClearAll clears every bit.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// trim zeroes the bits beyond Len in the last word, preserving the
// invariant that unused high bits are always zero.
func (v *Vector) trim() {
	if extra := v.n & wordMask; extra != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(extra)) - 1
	}
}

// WordCap returns the word capacity of the backing storage — the largest
// width Reshape can take without reallocating.
func (v *Vector) WordCap() int { return cap(v.words) }

// Reshape re-forms v as a zeroed vector of length n over its existing
// backing, returning false (and leaving v untouched) when the backing is
// too small. The scratch arena's counterpart to Matrix.Reshape.
func (v *Vector) Reshape(n int) bool {
	if n < 0 {
		panic("bitvec: negative vector length")
	}
	need := (n + wordMask) >> wordLog
	if cap(v.words) < need {
		return false
	}
	v.n = n
	v.words = v.words[:need]
	clear(v.words)
	return true
}

// Copy returns an independent copy of v.
func (v *Vector) Copy() *Vector {
	w := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with o and reports whether v changed.
func (v *Vector) CopyFrom(o *Vector) bool {
	v.checkSame(o)
	changed := false
	for i, w := range o.words {
		if v.words[i] != w {
			changed = true
			v.words[i] = w
		}
	}
	return changed
}

// Equal reports whether v and o contain exactly the same bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether no bit is set.
func (v *Vector) IsEmpty() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And sets v = v ∧ o and reports whether v changed.
func (v *Vector) And(o *Vector) bool {
	v.checkSame(o)
	changed := false
	for i, w := range o.words {
		nw := v.words[i] & w
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// Or sets v = v ∨ o and reports whether v changed.
func (v *Vector) Or(o *Vector) bool {
	v.checkSame(o)
	changed := false
	for i, w := range o.words {
		nw := v.words[i] | w
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// AndNot sets v = v ∧ ¬o and reports whether v changed.
func (v *Vector) AndNot(o *Vector) bool {
	v.checkSame(o)
	changed := false
	for i, w := range o.words {
		nw := v.words[i] &^ w
		if nw != v.words[i] {
			changed = true
			v.words[i] = nw
		}
	}
	return changed
}

// Not sets v = ¬v (complement within the vector's length).
func (v *Vector) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trim()
}

// Intersects reports whether v ∧ o is nonempty.
func (v *Vector) Intersects(o *Vector) bool {
	v.checkSame(o)
	for i, w := range o.words {
		if v.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every bit of v is also set in o.
func (v *Vector) SubsetOf(o *Vector) bool {
	v.checkSame(o)
	for i, w := range o.words {
		if v.words[i]&^w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every set bit, in increasing order.
func (v *Vector) ForEach(f func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi<<wordLog + b)
			w &= w - 1
		}
	}
}

// Indices returns the set bits in increasing order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	v.ForEach(func(i int) { out = append(out, i) })
	return out
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i >> wordLog
	w := v.words[wi] >> (uint(i) & wordMask)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi<<wordLog + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// String renders the vector as a set, e.g. "{0, 3, 17}".
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// BitString renders the vector as a 0/1 string, bit 0 first, e.g. "1010".
func (v *Vector) BitString() string {
	var b strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
