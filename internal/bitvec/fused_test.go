package bitvec

import (
	"math/rand"
	"testing"
)

// randVec returns a vector of length n with pseudo-random contents.
func randVec(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			v.Set(i)
		}
	}
	return v
}

// TestFusedMatchComposed proves each fused op equals its composition of
// primitives, bit for bit, across lengths that exercise partial last
// words, and that the changed report agrees with an Equal comparison.
func TestFusedMatchComposed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 3, 63, 64, 65, 130, 257}
	type op struct {
		name     string
		fused    func(dst, a, b, c *Vector) bool
		composed func(a, b, c *Vector) *Vector
	}
	ops := []op{
		{"AndOf", func(d, a, b, _ *Vector) bool { return d.AndOf(a, b) },
			func(a, b, _ *Vector) *Vector { r := a.Copy(); r.And(b); return r }},
		{"OrOf", func(d, a, b, _ *Vector) bool { return d.OrOf(a, b) },
			func(a, b, _ *Vector) *Vector { r := a.Copy(); r.Or(b); return r }},
		{"AndNotOf", func(d, a, b, _ *Vector) bool { return d.AndNotOf(a, b) },
			func(a, b, _ *Vector) *Vector { r := a.Copy(); r.AndNot(b); return r }},
		{"NotOf", func(d, a, _, _ *Vector) bool { return d.NotOf(a) },
			func(a, _, _ *Vector) *Vector { r := a.Copy(); r.Not(); return r }},
		{"OrAndNotOf", func(d, a, b, c *Vector) bool { return d.OrAndNotOf(a, b, c) },
			func(a, b, c *Vector) *Vector { r := b.Copy(); r.AndNot(c); r.Or(a); return r }},
		{"OrAndOf", func(d, a, b, c *Vector) bool { return d.OrAndOf(a, b, c) },
			func(a, b, c *Vector) *Vector { r := a.Copy(); r.Or(b); r.And(c); return r }},
		{"AndAndOf", func(d, a, b, c *Vector) bool { return d.AndAndOf(a, b, c) },
			func(a, b, c *Vector) *Vector { r := a.Copy(); r.And(b); r.And(c); return r }},
	}
	for _, o := range ops {
		for _, n := range lengths {
			for trial := 0; trial < 20; trial++ {
				a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
				dst := randVec(rng, n)
				before := dst.Copy()
				want := o.composed(a, b, c)
				changed := o.fused(dst, a, b, c)
				if !dst.Equal(want) {
					t.Fatalf("%s n=%d: got %s, want %s", o.name, n, dst, want)
				}
				if changed != !before.Equal(want) {
					t.Fatalf("%s n=%d: changed=%v but before=%s after=%s", o.name, n, changed, before, want)
				}
			}
		}
	}
}

// TestFusedTrimInvariant: fused ops never set bits beyond Len, even when
// complement is involved, so Count and IsEmpty stay truthful.
func TestFusedTrimInvariant(t *testing.T) {
	a := New(67)
	dst := New(67)
	dst.NotOf(a) // ¬∅ = full
	if got := dst.Count(); got != 67 {
		t.Fatalf("NotOf count = %d, want 67", got)
	}
	full := New(67)
	full.SetAll()
	dst2 := New(67)
	dst2.OrAndNotOf(full, full, New(67))
	if got := dst2.Count(); got != 67 {
		t.Fatalf("OrAndNotOf count = %d, want 67", got)
	}
}

// TestFusedLengthMismatchPanics: mixing lengths is a programming error.
func TestFusedLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	New(8).OrAndNotOf(New(8), New(9), New(8))
}

// TestFusedAliasing: the destination may alias an operand — the solvers
// rely on dst aliasing src in place-updates.
func TestFusedAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, kill := randVec(rng, 100), randVec(rng, 100)
	gen := randVec(rng, 100)
	want := a.Copy()
	want.AndNot(kill)
	want.Or(gen)
	got := a.Copy()
	got.OrAndNotOf(gen, got, kill) // dst aliases src
	if !got.Equal(want) {
		t.Fatalf("aliased OrAndNotOf: got %s, want %s", got, want)
	}
}

func TestMatrixClearAll(t *testing.T) {
	m := NewMatrix(3, 70)
	m.Set(0, 0)
	m.Set(2, 69)
	m.ClearAll()
	for i := 0; i < 3; i++ {
		if !m.Row(i).IsEmpty() {
			t.Fatalf("row %d not cleared", i)
		}
	}
}
