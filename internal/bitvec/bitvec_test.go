package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, v.Len())
		}
		if !v.IsEmpty() || v.Count() != 0 {
			t.Errorf("New(%d) not empty", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestSetBool(t *testing.T) {
	v := New(10)
	v.SetBool(3, true)
	if !v.Get(3) {
		t.Fatal("SetBool true failed")
	}
	v.SetBool(3, false)
	if v.Get(3) {
		t.Fatal("SetBool false failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Vector){
		func(v *Vector) { v.Get(-1) },
		func(v *Vector) { v.Get(10) },
		func(v *Vector) { v.Set(10) },
		func(v *Vector) { v.Clear(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f(New(10))
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestSetAllTrim(t *testing.T) {
	// SetAll on a length that is not a multiple of 64 must not set bits
	// beyond Len; Count would reveal them.
	for _, n := range []int{1, 5, 63, 64, 65, 100} {
		v := New(n)
		v.SetAll()
		if v.Count() != n {
			t.Errorf("SetAll on len %d: Count = %d", n, v.Count())
		}
		v.Not()
		if !v.IsEmpty() {
			t.Errorf("Not after SetAll on len %d not empty: %v", n, v)
		}
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromIndices(8, 0, 1, 2, 3)
	b := FromIndices(8, 2, 3, 4, 5)

	and := a.Copy()
	and.And(b)
	if got, want := and.String(), "{2, 3}"; got != want {
		t.Errorf("And = %s, want %s", got, want)
	}

	or := a.Copy()
	or.Or(b)
	if got, want := or.String(), "{0, 1, 2, 3, 4, 5}"; got != want {
		t.Errorf("Or = %s, want %s", got, want)
	}

	andNot := a.Copy()
	andNot.AndNot(b)
	if got, want := andNot.String(), "{0, 1}"; got != want {
		t.Errorf("AndNot = %s, want %s", got, want)
	}

	not := a.Copy()
	not.Not()
	if got, want := not.String(), "{4, 5, 6, 7}"; got != want {
		t.Errorf("Not = %s, want %s", got, want)
	}
}

func TestChangeReporting(t *testing.T) {
	a := FromIndices(64, 1, 2)
	b := FromIndices(64, 2, 3)
	if !a.Or(b) {
		t.Error("Or adding a bit reported no change")
	}
	if a.Or(b) {
		t.Error("idempotent Or reported change")
	}
	if !a.And(b) {
		t.Error("And removing bits reported no change")
	}
	if a.And(b) {
		t.Error("idempotent And reported change")
	}
	c := a.Copy()
	if a.CopyFrom(c) {
		t.Error("CopyFrom identical reported change")
	}
	c.Set(40)
	if !a.CopyFrom(c) {
		t.Error("CopyFrom differing reported no change")
	}
}

func TestSubsetIntersect(t *testing.T) {
	a := FromIndices(70, 1, 65)
	b := FromIndices(70, 1, 2, 65)
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(FromIndices(70, 3, 66)) {
		t.Error("disjoint vectors reported intersecting")
	}
	empty := New(70)
	if !empty.SubsetOf(a) {
		t.Error("empty not subset")
	}
}

func TestForEachIndices(t *testing.T) {
	want := []int{0, 5, 63, 64, 99}
	v := FromIndices(100, want...)
	got := v.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestNextSet(t *testing.T) {
	v := FromIndices(130, 3, 64, 129)
	cases := []struct{ from, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 129}, {129, 129}, {130, -1},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(0).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d", got)
	}
}

func TestStringForms(t *testing.T) {
	v := FromIndices(4, 0, 2)
	if got := v.String(); got != "{0, 2}" {
		t.Errorf("String = %q", got)
	}
	if got := v.BitString(); got != "1010" {
		t.Errorf("BitString = %q", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestCopyIndependent(t *testing.T) {
	a := FromIndices(65, 1, 64)
	b := a.Copy()
	b.Set(2)
	if a.Get(2) {
		t.Error("Copy shares storage")
	}
	if !a.Equal(FromIndices(65, 1, 64)) {
		t.Error("original mutated")
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(5).Equal(New(6)) {
		t.Error("vectors of different length reported equal")
	}
}

// refSet is a map-based reference model for property testing.
type refSet map[int]bool

func randomPair(r *rand.Rand) (*Vector, refSet) {
	n := 1 + r.Intn(200)
	v := New(n)
	ref := refSet{}
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			v.Set(i)
			ref[i] = true
		}
	}
	return v, ref
}

func agrees(v *Vector, ref refSet) bool {
	if v.Count() != len(ref) {
		return false
	}
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) != ref[i] {
			return false
		}
	}
	return true
}

func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, ra := New(n), refSet{}
		b, rb := New(n), refSet{}
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				a.Set(i)
				ra[i] = true
			}
			if r.Intn(2) == 0 {
				b.Set(i)
				rb[i] = true
			}
		}
		and := a.Copy()
		and.And(b)
		randRef := refSet{}
		for i := range ra {
			if rb[i] {
				randRef[i] = true
			}
		}
		if !agrees(and, randRef) {
			return false
		}
		or := a.Copy()
		or.Or(b)
		rorRef := refSet{}
		for i := range ra {
			rorRef[i] = true
		}
		for i := range rb {
			rorRef[i] = true
		}
		if !agrees(or, rorRef) {
			return false
		}
		diff := a.Copy()
		diff.AndNot(b)
		rdiff := refSet{}
		for i := range ra {
			if !rb[i] {
				rdiff[i] = true
			}
		}
		return agrees(diff, rdiff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// ¬(a ∧ b) == ¬a ∨ ¬b within the universe.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := randomPair(r)
		b := New(a.Len())
		for i := 0; i < b.Len(); i++ {
			if r.Intn(2) == 0 {
				b.Set(i)
			}
		}
		lhs := a.Copy()
		lhs.And(b)
		lhs.Not()
		na, nb := a.Copy(), b.Copy()
		na.Not()
		nb.Not()
		na.Or(nb)
		return lhs.Equal(na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNextSetMatchesIndices(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v, _ := randomPair(r)
		var got []int
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			got = append(got, i)
		}
		want := v.Indices()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 70)
	if m.Rows() != 3 || m.Cols() != 70 {
		t.Fatalf("dims = %d×%d", m.Rows(), m.Cols())
	}
	m.Set(0, 1)
	m.Set(1, 65)
	m.Set(2, 1)
	if !m.Get(0, 1) || !m.Get(1, 65) || m.Get(0, 0) {
		t.Fatal("Get/Set mismatch")
	}
	m.SetBool(0, 2, true)
	m.SetBool(0, 2, false)
	if m.Get(0, 2) {
		t.Fatal("SetBool false failed")
	}
	m.Clear(0, 1)
	if m.Get(0, 1) {
		t.Fatal("Clear failed")
	}
	col := m.Column(1)
	if col.Len() != 3 || !col.Get(2) || col.Get(0) {
		t.Fatalf("Column = %v", col)
	}
}

func TestMatrixCopyEqual(t *testing.T) {
	m := NewMatrix(2, 10)
	m.Set(1, 3)
	c := m.Copy()
	if !m.Equal(c) {
		t.Fatal("copy not equal")
	}
	c.Set(0, 0)
	if m.Equal(c) {
		t.Fatal("mutated copy still equal")
	}
	if m.Get(0, 0) {
		t.Fatal("copy shares storage")
	}
	if m.Equal(NewMatrix(2, 11)) || m.Equal(NewMatrix(3, 10)) {
		t.Fatal("dimension mismatch reported equal")
	}
}

func TestMatrixRowShared(t *testing.T) {
	m := NewMatrix(2, 8)
	m.Row(0).Set(5)
	if !m.Get(0, 5) {
		t.Fatal("Row is not a live view")
	}
}

func TestMatrixBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Row out of range did not panic")
		}
	}()
	NewMatrix(2, 2).Row(2)
}

func BenchmarkOr1024(b *testing.B) {
	x := New(1024)
	y := New(1024)
	for i := 0; i < 1024; i += 3 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}
