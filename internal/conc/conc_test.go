package conc

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestGroupCollectsFirstError(t *testing.T) {
	var g Group
	boom := errors.New("boom")
	var ran atomic.Int64
	g.Go(func() error { ran.Add(1); return nil })
	g.Go(func() error { ran.Add(1); return boom })
	g.Go(func() error { ran.Add(1); return nil })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d functions, want 3", ran.Load())
	}
}

func TestGroupZeroValueNoWork(t *testing.T) {
	var g Group
	if err := g.Wait(); err != nil {
		t.Fatalf("empty group Wait = %v", err)
	}
}

// TestParallelVisitsEveryIndexOnce is the contract the lcmd batch
// dispatcher depends on: even with failures and limits, each index runs
// exactly once, so admission accounting stays item-exact.
func TestParallelVisitsEveryIndexOnce(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 3, 16, 100} {
		const n = 64
		visits := make([]atomic.Int64, n)
		boom := errors.New("boom")
		err := Parallel(n, limit, func(i int) error {
			visits[i].Add(1)
			if i%5 == 0 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("limit=%d: err = %v, want %v", limit, err, boom)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("limit=%d: index %d visited %d times", limit, i, got)
			}
		}
	}
}

func TestParallelSequentialOrder(t *testing.T) {
	var order []int
	if err := Parallel(5, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("limit=1 order = %v, want ascending", order)
		}
	}
}

func TestParallelEmpty(t *testing.T) {
	called := false
	if err := Parallel(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}
