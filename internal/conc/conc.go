// Package conc provides the two small concurrency shapes the optimizer
// needs — a minimal error-collecting goroutine group and a bounded
// parallel-for — with stdlib-only code. The module deliberately avoids
// external dependencies, so this is the local stand-in for
// golang.org/x/sync/errgroup.
//
// Neither helper cancels work on error: every submitted task runs to
// completion. That is a deliberate contract, not a limitation. The
// solvers and the batch dispatcher thread context cancellation through
// the work itself (dataflow.Problem.Ctx, per-item request contexts), and
// the lcmd accounting invariant — every admitted item lands in exactly
// one outcome bucket — requires that a failure in one item never stops
// its siblings from being dispatched and accounted.
package conc

import "sync"

// Group runs functions on their own goroutines and collects the first
// error. The zero value is ready to use. Unlike errgroup, Wait never
// cancels the remaining functions; they always run to completion.
type Group struct {
	wg    sync.WaitGroup
	mu    sync.Mutex
	first error
}

// Go runs fn on a new goroutine. Errors are collected; the first one
// (in completion order) is returned by Wait.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.first == nil {
				g.first = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every function started with Go has returned and
// reports the first error, or nil when all succeeded.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.first
}

// Parallel calls fn(i) for every i in [0, n) using at most limit
// concurrent goroutines (limit <= 1 runs sequentially on the caller's
// goroutine count of one lane). Every index is visited exactly once even
// when earlier calls fail; the first error is returned after all calls
// complete. Indices are claimed in order, so with limit 1 the calls are
// exactly fn(0), fn(1), …, fn(n-1).
func Parallel(n, limit int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	var (
		g    Group
		mu   sync.Mutex
		next int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := next
		next++
		return i
	}
	for lane := 0; lane < limit; lane++ {
		g.Go(func() error {
			var firstErr error
			for {
				i := claim()
				if i >= n {
					return firstErr
				}
				if err := fn(i); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		})
	}
	return g.Wait()
}
