package textir

import (
	"strings"
	"testing"

	"lazycm/internal/ir"
)

const diamondSrc = `
# the canonical partially redundant diamond
func diamond(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b   # redundant along then
  ret y
}
`

func TestParseDiamond(t *testing.T) {
	f, err := ParseFunction(diamondSrc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "diamond" || len(f.Params) != 3 {
		t.Fatalf("header wrong: %s %v", f.Name, f.Params)
	}
	if f.NumBlocks() != 4 || f.Entry().Name != "entry" {
		t.Fatalf("blocks wrong: %d", f.NumBlocks())
	}
	then := f.BlockByName("then")
	if len(then.Instrs) != 1 || then.Instrs[0].String() != "x = a + b" {
		t.Fatalf("then wrong: %v", then.Instrs)
	}
	join := f.BlockByName("join")
	if join.Term.Kind != ir.Ret || !join.Term.HasVal || join.Term.Val.Name != "y" {
		t.Fatalf("join term wrong: %v", join.Term)
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := ParseFunction(diamondSrc)
	if err != nil {
		t.Fatal(err)
	}
	printed := f.String()
	g, err := ParseFunction(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if g.String() != printed {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", printed, g.String())
	}
}

func TestParseAllStatementForms(t *testing.T) {
	src := `
func all(a) {
entry:
  x = a + 1
  y = x
  z = -5
  w = x % y
  print w
  print 7
  nop
  br x pos neg
pos:
  ret x
neg:
  ret
}
`
	f, err := ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	e := f.Entry()
	if len(e.Instrs) != 7 {
		t.Fatalf("entry instrs = %d", len(e.Instrs))
	}
	if e.Instrs[2].Kind != ir.Copy || e.Instrs[2].A.Value != -5 {
		t.Errorf("negative constant copy wrong: %v", e.Instrs[2])
	}
	if e.Instrs[3].Op != ir.Mod {
		t.Errorf("mod parsed as %v", e.Instrs[3].Op)
	}
	if f.BlockByName("neg").Term.HasVal {
		t.Error("bare ret has value")
	}
	// Round-trip again.
	if _, err := ParseFunction(f.String()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestParseMultipleFunctions(t *testing.T) {
	src := `
func one() {
e:
  ret
}
func two(x) {
e:
  ret x
}
`
	fns, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 2 || fns[0].Name != "one" || fns[1].Name != "two" {
		t.Fatalf("parsed %d functions", len(fns))
	}
	if _, err := Parse(PrintFunctions(fns)); err != nil {
		t.Fatalf("multi round trip: %v", err)
	}
}

func TestParseAllOperators(t *testing.T) {
	var b strings.Builder
	b.WriteString("func ops(a, b) {\nentry:\n")
	for _, op := range ir.Ops() {
		b.WriteString("  x = a " + op.String() + " b\n")
	}
	b.WriteString("  ret x\n}\n")
	f, err := ParseFunction(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entry().Instrs) != len(ir.Ops()) {
		t.Fatalf("instrs = %d", len(f.Entry().Instrs))
	}
	for i, op := range ir.Ops() {
		if f.Entry().Instrs[i].Op != op {
			t.Errorf("instr %d op = %v, want %v", i, f.Entry().Instrs[i].Op, op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "no functions"},
		{"not func", "banana {", "expected 'func'"},
		{"bad header", "func f( {", "malformed function header"},
		{"bad name", "func 9f() {", "bad function name"},
		{"bad param", "func f(9x) {", "bad parameter"},
		{"missing brace", "func f()\ne:\n ret\n}", "expected '{'"},
		{"eof", "func f() {\ne:\n  ret", "unexpected end"},
		{"stmt before label", "func f() {\n  ret\n}", "before any block"},
		{"bad jmp", "func f() {\ne:\n  jmp\n}", "malformed jmp"},
		{"bad br", "func f() {\ne:\n  br c e\n}", "malformed br"},
		{"bad ret", "func f() {\ne:\n  ret a b\n}", "malformed ret"},
		{"bad print", "func f() {\ne:\n  print\n}", "malformed print"},
		{"bad nop", "func f() {\ne:\n  nop 3\n}", "malformed nop"},
		{"bad op", "func f() {\ne:\n  x = a ** b\n  ret\n}", "unknown operator"},
		{"bad operand", "func f() {\ne:\n  x = 12z\n  ret\n}", "bad operand"},
		{"bad dst", "func f() {\ne:\n  9x = a\n  ret\n}", "bad destination"},
		{"long assign", "func f() {\ne:\n  x = a + b + c\n  ret\n}", "malformed assignment"},
		{"gibberish", "func f() {\ne:\n  woof woof\n  ret\n}", "unrecognized statement"},
		{"undefined target", "func f() {\ne:\n  jmp nowhere\n}", "undefined block"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.want)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	src := "func f() {\ne:\n  woof\n  ret\n}"
	_, err := Parse(src)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func TestIsIdent(t *testing.T) {
	good := []string{"a", "A", "_", "a1", "a_b", "a.b.split", "xYz_9"}
	bad := []string{"", "9a", ".a", "a-b", "a b", "func", "jmp", "br", "ret", "print", "nop", "a+"}
	for _, s := range good {
		if !isIdent(s) {
			t.Errorf("isIdent(%q) = false", s)
		}
	}
	for _, s := range bad {
		if isIdent(s) {
			t.Errorf("isIdent(%q) = true", s)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "  # leading comment\n\nfunc f() {   # trailing\ne:\n\n   ret   # done\n}\n#tail"
	if _, err := ParseFunction(src); err != nil {
		t.Fatal(err)
	}
}
