package textir

import (
	"strings"
	"testing"

	"lazycm/internal/randprog"
)

// FuzzParse feeds arbitrary text to the parser: it must never panic, and
// whenever it accepts an input, printing and reparsing must be stable.
func FuzzParse(f *testing.F) {
	f.Add("func f(a, b) {\ne:\n  x = a + b\n  ret x\n}")
	f.Add("func f() {\ne:\n  nop\n  br x e e\n}")
	f.Add("# comment only")
	f.Add("func f() {\ne:\n  ret\n}\nfunc g() {\ne:\n  ret\n}")
	f.Add("func f(")
	f.Add(strings.Repeat("func f() {\ne:\n  ret\n}\n", 3))
	for seed := int64(0); seed < 8; seed++ {
		f.Add(randprog.ForSeed(seed).String())
	}
	f.Fuzz(func(t *testing.T, src string) {
		fns, err := Parse(src)
		if err != nil {
			return
		}
		printed := PrintFunctions(fns)
		fns2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of printed output failed: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if got := PrintFunctions(fns2); got != printed {
			t.Fatalf("print not stable:\n%s\nvs\n%s", printed, got)
		}
	})
}

// FuzzGeneratedPrograms parses the printed form of generated programs for
// arbitrary seeds: the generator, printer and parser must agree for any
// seed value.
func FuzzGeneratedPrograms(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(12345))
	f.Add(int64(-1))
	f.Fuzz(func(t *testing.T, seed int64) {
		fn := randprog.ForSeed(seed)
		if err := fn.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		re, err := ParseFunction(fn.String())
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, fn)
		}
		if re.String() != fn.String() {
			t.Fatalf("seed %d round trip unstable", seed)
		}
	})
}
