package textir

import (
	"errors"
	"strings"
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/pipeline"
	"lazycm/internal/randprog"
	"lazycm/internal/verify"
)

// FuzzParse feeds arbitrary text to the parser: it must never panic, and
// whenever it accepts an input, printing and reparsing must be stable.
func FuzzParse(f *testing.F) {
	f.Add("func f(a, b) {\ne:\n  x = a + b\n  ret x\n}")
	f.Add("func f() {\ne:\n  nop\n  br x e e\n}")
	f.Add("# comment only")
	f.Add("func f() {\ne:\n  ret\n}\nfunc g() {\ne:\n  ret\n}")
	f.Add("func f(")
	f.Add(strings.Repeat("func f() {\ne:\n  ret\n}\n", 3))
	for seed := int64(0); seed < 8; seed++ {
		f.Add(randprog.ForSeed(seed).String())
	}
	// Every checked-in program — corpus and quarantined crashers alike —
	// seeds the fuzzer, so a captured regression keeps mutating forever.
	for _, seed := range corpusSeeds(f) {
		f.Add(seed.Src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fns, err := Parse(src)
		if err != nil {
			return
		}
		printed := PrintFunctions(fns)
		fns2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of printed output failed: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if got := PrintFunctions(fns2); got != printed {
			t.Fatalf("print not stable:\n%s\nvs\n%s", printed, got)
		}
	})
}

// FuzzPipeline drives the full hardened pipeline with arbitrary parsed
// input: whatever the parser accepts, the pipeline must either optimize,
// reject as invalid, or fall back — no panic may escape, the surviving
// function must always validate, and on the happy path it must behave
// like the input.
func FuzzPipeline(f *testing.F) {
	f.Add("func f(a, b) {\ne:\n  x = a + b\n  y = a + b\n  ret y\n}", 0)
	f.Add("func f(a, b, c) {\nentry:\n  br c t e\nt:\n  x = a + b\n  jmp j\ne:\n  jmp j\nj:\n  y = a + b\n  ret y\n}", 100)
	f.Add("func f() {\ne:\n  jmp e\n}", 0) // no exit: invalid input
	for seed := int64(0); seed < 4; seed++ {
		f.Add(randprog.ForSeed(seed).String(), int(seed))
	}
	for i, seed := range corpusSeeds(f) {
		f.Add(seed.Src, i)
	}
	f.Fuzz(func(t *testing.T, src string, fuel int) {
		fns, err := Parse(src)
		if err != nil {
			return
		}
		if fuel < 0 {
			fuel = -fuel
		}
		passes := []pipeline.Pass{pipeline.LCMPass(lcm.LCM), pipeline.MRPass(), pipeline.OptPass(), pipeline.CleanupPass()}
		for _, fn := range fns {
			res, err := pipeline.Run(fn, passes, pipeline.Options{
				Fuel: fuel % 512, MaxRounds: 2, Verify: true, Runs: 2,
			})
			if err != nil {
				if !errors.Is(err, pipeline.ErrInvalidInput) {
					t.Fatalf("unexpected error kind: %v\n%s", err, fn)
				}
				continue
			}
			if res.F == nil {
				t.Fatalf("pipeline returned nil function\n%s", fn)
			}
			if verr := ir.Validate(res.F); verr != nil {
				t.Fatalf("pipeline shipped an invalid function: %v\n%s", verr, res.F)
			}
			if err := verify.Equivalent(fn, res.F, 1, 2); err != nil {
				t.Fatalf("pipeline shipped a misbehaving function: %v\n%s", err, res.F)
			}
		}
	})
}

// FuzzGeneratedPrograms parses the printed form of generated programs for
// arbitrary seeds: the generator, printer and parser must agree for any
// seed value.
func FuzzGeneratedPrograms(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(12345))
	f.Add(int64(-1))
	f.Fuzz(func(t *testing.T, seed int64) {
		fn := randprog.ForSeed(seed)
		if err := fn.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		re, err := ParseFunction(fn.String())
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, fn)
		}
		if re.String() != fn.String() {
			t.Fatalf("seed %d round trip unstable", seed)
		}
	})
}
