package textir_test

import (
	"fmt"
	"log"

	"lazycm/internal/textir"
)

// ExampleParseFunction parses a small program and prints its structure.
func ExampleParseFunction() {
	f, err := textir.ParseFunction(`
# square the sum
func f(a, b) {
entry:
  s = a + b
  q = s * s
  ret q
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s with %d params, %d blocks, %d statements\n",
		f.Name, len(f.Params), f.NumBlocks(), f.NumInstrs())
	// Output:
	// f with 2 params, 1 blocks, 2 statements
}

// ExampleParse handles multiple functions and round-trips them.
func ExampleParse() {
	src := "func one() {\ne:\n  ret\n}\n\nfunc two(x) {\ne:\n  ret x\n}\n"
	fns, err := textir.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(textir.PrintFunctions(fns))
	// Output:
	// func one() {
	// e:
	//   ret
	// }
	//
	// func two(x) {
	// e:
	//   ret x
	// }
}
