package textir_test

// This file is an external test package so it can drive the corpus
// through internal/triage (which imports textir): the in-package tests
// cannot, or the import would cycle.

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
	"lazycm/internal/triage"
	"lazycm/internal/verify"
)

// replaySeeds mirrors corpusSeeds from the in-package tests: every
// checked-in program plus every quarantined or promoted crasher.
func replaySeeds(tb testing.TB) []struct{ Path, Src string } {
	tb.Helper()
	var seeds []struct{ Path, Src string }
	for _, pat := range []string{
		filepath.Join("..", "..", "testdata", "*.ir"),
		filepath.Join("..", "..", "testdata", "crashers", "*.ir"),
	} {
		paths, err := filepath.Glob(pat)
		if err != nil {
			tb.Fatal(err)
		}
		sort.Strings(paths)
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				tb.Fatal(err)
			}
			seeds = append(seeds, struct{ Path, Src string }{p, string(src)})
		}
	}
	if len(seeds) == 0 {
		tb.Fatal("no corpus seeds found under ../../testdata")
	}
	return seeds
}

// TestCrasherReplay replays the whole corpus — crucially including every
// quarantined crasher — through the full hardened pipeline. A crasher is
// allowed to be rejected or to fall back; it is not allowed to panic, to
// ship an invalid function, or to ship one that misbehaves. Promoted
// crashers carry a "# signature:" sidecar, and for those the replay must
// witness exactly the recorded defect (or none, once the defect is
// fixed) — a different signature means the evidence drifted and the file
// needs re-triage.
func TestCrasherReplay(t *testing.T) {
	passes := []pipeline.Pass{
		pipeline.LCMPass(lcm.LCM), pipeline.MRPass(), pipeline.GCSEPass(),
		pipeline.OptPass(), pipeline.CleanupPass(),
	}
	for _, seed := range replaySeeds(t) {
		t.Run(filepath.Base(seed.Path), func(t *testing.T) {
			if recorded, ok := triage.RecordedSignature(seed.Src); ok {
				d := triage.ParseDirectives(seed.Src)
				sig, reproduces := triage.Replay(seed.Src, d, 10*time.Second)
				if reproduces && sig.String() != recorded {
					t.Fatalf("signature drift: recorded %s, replays as %s (directives %s)",
						recorded, sig, d.String())
				}
				if !reproduces {
					t.Logf("recorded %s now replays clean (fixed defect, kept as regression seed)", recorded)
				}
			}

			fns, err := textir.Parse(seed.Src)
			if err != nil {
				// Unparseable crashers stay in quarantine for the parser
				// fuzzer; the pipeline has nothing to replay.
				t.Skipf("not parseable: %v", err)
			}
			for _, fn := range fns {
				res, err := pipeline.Run(fn, passes, pipeline.Options{
					Verify: true, Runs: 2, MaxRounds: 2,
				})
				if err != nil {
					if !errors.Is(err, pipeline.ErrInvalidInput) {
						t.Fatalf("non-containment error kind: %v\n%s", err, fn)
					}
					continue
				}
				if verr := ir.Validate(res.F); verr != nil {
					t.Fatalf("replay shipped an invalid function: %v\n%s", verr, res.F)
				}
				if eerr := verify.Equivalent(fn, res.F, 1, 2); eerr != nil {
					t.Fatalf("replay shipped a misbehaving function: %v\n%s", eerr, res.F)
				}
			}
		})
	}
}
