// Package textir parses and prints the textual form of the IR. The syntax
// is line oriented and round-trips with ir.Function.String:
//
//	func name(p1, p2) {
//	entry:
//	  x = a + b        // binop (one operator, as in the paper's model)
//	  y = x            // copy
//	  y = 42           // copy of a constant
//	  print y
//	  nop
//	  br c then else   // branch on c != 0
//	head:
//	  jmp entry
//	done:
//	  ret y            // or bare "ret"
//	}
//
// '#' starts a comment that runs to end of line. Blank lines are ignored.
// The first block of a function is its entry block.
package textir

import (
	"fmt"
	"strconv"
	"strings"

	"lazycm/internal/ir"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("textir: line %d: %s", e.Line, e.Msg)
}

type parser struct {
	lines []string
	pos   int // index of next line
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next non-empty, comment-stripped line, trimmed, or ""
// at end of input.
func (p *parser) next() string {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line
		}
	}
	return ""
}

// ParseFunction parses a single function from src.
func ParseFunction(src string) (*ir.Function, error) {
	fns, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(fns) != 1 {
		return nil, fmt.Errorf("textir: expected exactly 1 function, found %d", len(fns))
	}
	return fns[0], nil
}

// Parse parses all functions in src.
func Parse(src string) ([]*ir.Function, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	var fns []*ir.Function
	for {
		line := p.next()
		if line == "" {
			break
		}
		fn, err := p.function(line)
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
	if len(fns) == 0 {
		return nil, fmt.Errorf("textir: no functions in input")
	}
	return fns, nil
}

func (p *parser) function(header string) (*ir.Function, error) {
	rest, ok := strings.CutPrefix(header, "func ")
	if !ok {
		return nil, p.errf("expected 'func', got %q", header)
	}
	open := strings.IndexByte(rest, '(')
	closeP := strings.IndexByte(rest, ')')
	if open < 0 || closeP < open {
		return nil, p.errf("malformed function header %q", header)
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" || !isIdent(name) {
		return nil, p.errf("bad function name %q", name)
	}
	var params []string
	if s := strings.TrimSpace(rest[open+1 : closeP]); s != "" {
		for _, f := range strings.Split(s, ",") {
			f = strings.TrimSpace(f)
			if !isIdent(f) {
				return nil, p.errf("bad parameter name %q", f)
			}
			params = append(params, f)
		}
	}
	if tail := strings.TrimSpace(rest[closeP+1:]); tail != "{" {
		return nil, p.errf("expected '{' after function header, got %q", tail)
	}

	bd := ir.NewBuilder(name, params...)
	sawBlock := false
	for {
		line := p.next()
		if line == "" {
			return nil, p.errf("unexpected end of input in function %q", name)
		}
		if line == "}" {
			break
		}
		if label, ok := strings.CutSuffix(line, ":"); ok && isIdent(label) {
			bd.Block(label)
			sawBlock = true
			continue
		}
		if !sawBlock {
			return nil, p.errf("statement %q before any block label", line)
		}
		if err := p.statement(bd, line); err != nil {
			return nil, err
		}
	}
	return bd.Finish()
}

func (p *parser) statement(bd *ir.Builder, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "jmp":
		if len(fields) != 2 || !isIdent(fields[1]) {
			return p.errf("malformed jmp %q", line)
		}
		bd.Jump(fields[1])
		return nil
	case "br":
		if len(fields) != 4 || !isIdent(fields[2]) || !isIdent(fields[3]) {
			return p.errf("malformed br %q", line)
		}
		cond, err := p.operand(fields[1])
		if err != nil {
			return err
		}
		bd.Branch(cond, fields[2], fields[3])
		return nil
	case "ret":
		switch len(fields) {
		case 1:
			bd.RetVoid()
			return nil
		case 2:
			v, err := p.operand(fields[1])
			if err != nil {
				return err
			}
			bd.Ret(v)
			return nil
		}
		return p.errf("malformed ret %q", line)
	case "print":
		if len(fields) != 2 {
			return p.errf("malformed print %q", line)
		}
		v, err := p.operand(fields[1])
		if err != nil {
			return err
		}
		bd.Print(v)
		return nil
	case "nop":
		if len(fields) != 1 {
			return p.errf("malformed nop %q", line)
		}
		bd.Nop()
		return nil
	}

	// Assignment: dst = a [op b]
	if len(fields) >= 3 && fields[1] == "=" {
		dst := fields[0]
		if !isIdent(dst) {
			return p.errf("bad destination %q", dst)
		}
		switch len(fields) {
		case 3:
			src, err := p.operand(fields[2])
			if err != nil {
				return err
			}
			bd.Copy(dst, src)
			return nil
		case 5:
			a, err := p.operand(fields[2])
			if err != nil {
				return err
			}
			op, ok := ir.OpFromString(fields[3])
			if !ok {
				return p.errf("unknown operator %q", fields[3])
			}
			b, err := p.operand(fields[4])
			if err != nil {
				return err
			}
			bd.BinOp(dst, op, a, b)
			return nil
		}
		return p.errf("malformed assignment %q (operands must be space separated)", line)
	}
	return p.errf("unrecognized statement %q", line)
}

func (p *parser) operand(s string) (ir.Operand, error) {
	if isIdent(s) {
		return ir.Var(s), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return ir.Operand{}, p.errf("bad operand %q", s)
	}
	return ir.Const(v), nil
}

// isIdent reports whether s is a valid identifier: a letter or '_' followed
// by letters, digits, '_' or '.', and not a reserved word. '.' is allowed so
// that synthetic split-block names round-trip.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	switch s {
	case "func", "jmp", "br", "ret", "print", "nop":
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '.'):
		default:
			return false
		}
	}
	return true
}

// PrintFunctions renders fns in parseable form separated by blank lines.
func PrintFunctions(fns []*ir.Function) string {
	var b strings.Builder
	for i, f := range fns {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}
