package textir

import (
	"fmt"
	"strings"
)

// This file is the surgical layer under the crash-triage reducer: a
// loose, purely line-level model of a textual-IR module that parses and
// prints programs without semantic validation. A quarantined crasher is
// often interesting precisely because it is not a valid function —
// an undefined jump target, an unreachable block, a missing terminator —
// so the reducer cannot operate on ir.Function; it operates on this
// model, which preserves any line the strict parser would reject.
//
// The model guarantees only structural fidelity: for any input that
// ParseModule accepts, Module.String() parses (strictly or loosely) to
// the same line sequence, so a reduction step changes exactly what it
// means to change and nothing else.

// Module is the loose structural form of a textual-IR source: a sequence
// of functions, each a sequence of labeled blocks holding raw statement
// lines.
type Module struct {
	Funcs []*FuncDoc
}

// FuncDoc is one function in the loose model.
type FuncDoc struct {
	// Header is the full header line ("func name(a, b) {").
	Header string
	// Name is the function name extracted from the header, best effort.
	Name string
	// Loose holds statement lines that appear before any block label —
	// invalid under the strict grammar, but preserved for reduction.
	Loose []string
	// Blocks are the function's blocks in order.
	Blocks []*BlockDoc
}

// BlockDoc is one labeled block: its label and raw statement lines
// (the last line is usually, but not necessarily, a terminator).
type BlockDoc struct {
	Label string
	Lines []string
}

// ParseModule splits src into the loose structural model. Comments and
// blank lines are dropped. It fails only on text that has no place in
// the structure at all: statements outside any function, a missing
// closing brace, or stray closers.
func ParseModule(src string) (*Module, error) {
	m := &Module{}
	var fn *FuncDoc
	var blk *BlockDoc
	for num, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "func ") && strings.HasSuffix(line, "{"):
			if fn != nil {
				return nil, fmt.Errorf("textir: line %d: function %q not closed before next function", num+1, fn.Name)
			}
			name := strings.TrimPrefix(line, "func ")
			if i := strings.IndexByte(name, '('); i >= 0 {
				name = name[:i]
			}
			fn = &FuncDoc{Header: line, Name: strings.TrimSpace(name)}
			blk = nil
		case line == "}":
			if fn == nil {
				return nil, fmt.Errorf("textir: line %d: unmatched '}'", num+1)
			}
			m.Funcs = append(m.Funcs, fn)
			fn, blk = nil, nil
		case fn == nil:
			return nil, fmt.Errorf("textir: line %d: statement %q outside any function", num+1, line)
		default:
			if label, ok := strings.CutSuffix(line, ":"); ok && isIdent(label) {
				blk = &BlockDoc{Label: label}
				fn.Blocks = append(fn.Blocks, blk)
				continue
			}
			if blk == nil {
				fn.Loose = append(fn.Loose, line)
				continue
			}
			blk.Lines = append(blk.Lines, line)
		}
	}
	if fn != nil {
		return nil, fmt.Errorf("textir: unexpected end of input in function %q", fn.Name)
	}
	if len(m.Funcs) == 0 {
		return nil, fmt.Errorf("textir: no functions in input")
	}
	return m, nil
}

// String renders the module back to parseable text, functions separated
// by blank lines.
func (m *Module) String() string {
	var b strings.Builder
	for i, fn := range m.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(fn.String())
	}
	return b.String()
}

// String renders one function.
func (f *FuncDoc) String() string {
	var b strings.Builder
	b.WriteString(f.Header)
	b.WriteByte('\n')
	for _, line := range f.Loose {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	for _, blk := range f.Blocks {
		b.WriteString(blk.Label)
		b.WriteString(":\n")
		for _, line := range blk.Lines {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Clone deep-copies the module.
func (m *Module) Clone() *Module {
	c := &Module{Funcs: make([]*FuncDoc, len(m.Funcs))}
	for i, fn := range m.Funcs {
		nf := &FuncDoc{
			Header: fn.Header, Name: fn.Name,
			Loose:  append([]string(nil), fn.Loose...),
			Blocks: make([]*BlockDoc, len(fn.Blocks)),
		}
		for j, blk := range fn.Blocks {
			nf.Blocks[j] = &BlockDoc{Label: blk.Label, Lines: append([]string(nil), blk.Lines...)}
		}
		c.Funcs[i] = nf
	}
	return c
}

// SplitFunctions returns each function of src as standalone source text,
// in order. The batch endpoint uses it to give every function of a
// module request its own fault-isolation domain: a chunk that fails to
// parse poisons only its own result.
func SplitFunctions(src string) ([]string, error) {
	m, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(m.Funcs))
	for i, fn := range m.Funcs {
		out[i] = fn.String()
	}
	return out, nil
}

// TermTargets parses a raw statement line as a terminator and returns
// its kind ("jmp", "br", "ret") and target labels; ok is false for
// non-terminator lines.
func TermTargets(line string) (kind string, targets []string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil, false
	}
	switch fields[0] {
	case "jmp":
		if len(fields) == 2 {
			return "jmp", fields[1:], true
		}
	case "br":
		if len(fields) == 4 {
			return "br", fields[2:], true
		}
	case "ret":
		if len(fields) <= 2 {
			return "ret", nil, true
		}
	}
	return "", nil, false
}

// Term returns the block's terminator line (its last line, when that
// line parses as a terminator); ok is false for blocks that fall off
// the end or are empty.
func (b *BlockDoc) Term() (line string, ok bool) {
	if len(b.Lines) == 0 {
		return "", false
	}
	last := b.Lines[len(b.Lines)-1]
	if _, _, ok := TermTargets(last); !ok {
		return "", false
	}
	return last, true
}

// DropFunc removes function i.
func (m *Module) DropFunc(i int) {
	m.Funcs = append(m.Funcs[:i:i], m.Funcs[i+1:]...)
}

// DropBlock removes block i from the function and re-points every
// terminator that targeted it: a reference to the dropped label is
// replaced by the dropped block's own first ongoing target (the
// fallthrough a real pass would create), and when the dropped block has
// no ongoing target the referencing terminator degrades structurally —
// br loses the dead arm and becomes jmp, jmp becomes ret.
func (f *FuncDoc) DropBlock(i int) {
	dropped := f.Blocks[i]
	succ := ""
	if term, ok := dropped.Term(); ok {
		if _, targets, _ := TermTargets(term); len(targets) > 0 {
			for _, tgt := range targets {
				if tgt != dropped.Label {
					succ = tgt
					break
				}
			}
		}
	}
	f.Blocks = append(f.Blocks[:i:i], f.Blocks[i+1:]...)
	for _, blk := range f.Blocks {
		for j, line := range blk.Lines {
			blk.Lines[j] = RepointTerm(line, dropped.Label, succ)
		}
	}
}

// RepointTerm rewrites a terminator line so that references to the label
// `from` become `to`. When `to` is empty (no replacement target exists)
// the terminator degrades: a branch drops the dead arm and becomes a
// jump, a jump becomes a bare ret. Non-terminator lines and lines that
// do not reference `from` are returned unchanged.
func RepointTerm(line, from, to string) string {
	kind, targets, ok := TermTargets(line)
	if !ok {
		return line
	}
	switch kind {
	case "jmp":
		if targets[0] != from {
			return line
		}
		if to != "" {
			return "jmp " + to
		}
		return "ret"
	case "br":
		then, els := targets[0], targets[1]
		if then != from && els != from {
			return line
		}
		fields := strings.Fields(line)
		cond := fields[1]
		if then == from {
			then = to
		}
		if els == from {
			els = to
		}
		switch {
		case then != "" && els != "":
			return fmt.Sprintf("br %s %s %s", cond, then, els)
		case then != "":
			return "jmp " + then
		case els != "":
			return "jmp " + els
		}
		return "ret"
	}
	return line
}

// SimplifyTermCandidates returns the strictly simpler terminator forms a
// reducer may try in place of line: br → either jmp arm, jmp → ret,
// ret v → ret. The empty slice means the line is already minimal (or is
// not a terminator).
func SimplifyTermCandidates(line string) []string {
	kind, targets, ok := TermTargets(line)
	if !ok {
		return nil
	}
	switch kind {
	case "br":
		out := []string{"jmp " + targets[0]}
		if targets[1] != targets[0] {
			out = append(out, "jmp "+targets[1])
		}
		return out
	case "jmp":
		return []string{"ret"}
	case "ret":
		if len(strings.Fields(line)) == 2 {
			return []string{"ret"}
		}
	}
	return nil
}

// SimplifyOperandCandidates returns variants of a statement line with
// one variable operand replaced by the constant 0 — the grammar's
// simplest operand. Destinations and labels are never touched, so the
// line's shape survives; only its data inputs shrink.
func SimplifyOperandCandidates(line string) []string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	var operandIdx []int
	switch fields[0] {
	case "print":
		if len(fields) == 2 {
			operandIdx = []int{1}
		}
	case "ret":
		if len(fields) == 2 {
			operandIdx = []int{1}
		}
	case "br":
		if len(fields) == 4 {
			operandIdx = []int{1}
		}
	case "jmp", "nop":
	default:
		// Assignment: dst = a [op b].
		if len(fields) >= 3 && fields[1] == "=" {
			operandIdx = append(operandIdx, 2)
			if len(fields) == 5 {
				operandIdx = append(operandIdx, 4)
			}
		}
	}
	var out []string
	for _, idx := range operandIdx {
		if !isIdent(fields[idx]) {
			continue // already a constant (or junk a reduction shouldn't invent)
		}
		variant := append([]string(nil), fields...)
		variant[idx] = "0"
		out = append(out, strings.Join(variant, " "))
	}
	return out
}
