package textir

import (
	"strings"
	"testing"
)

const surgerySrc = `
# leading comment
func f(a, b, p) {
entry:
  br p t e
t:
  x = a + b
  jmp j
e:
  y = a + b
  jmp j
j:
  z = a + b
  ret z
}

func g(q) {
e:
  print q
  ret
}
`

func TestParseModuleRoundTrip(t *testing.T) {
	m, err := ParseModule(surgerySrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 || m.Funcs[0].Name != "f" || m.Funcs[1].Name != "g" {
		t.Fatalf("bad structure: %+v", m.Funcs)
	}
	if len(m.Funcs[0].Blocks) != 4 {
		t.Fatalf("f has %d blocks, want 4", len(m.Funcs[0].Blocks))
	}
	// The printed module must parse strictly to the same functions.
	fns1, err := Parse(surgerySrc)
	if err != nil {
		t.Fatal(err)
	}
	fns2, err := Parse(m.String())
	if err != nil {
		t.Fatalf("round-tripped module does not parse: %v\n%s", err, m.String())
	}
	if PrintFunctions(fns1) != PrintFunctions(fns2) {
		t.Errorf("round trip changed the module:\n%s\nvs\n%s", PrintFunctions(fns1), PrintFunctions(fns2))
	}
}

// TestParseModuleLoose: programs the strict parser rejects still get a
// structural model — that is the whole point of the loose layer.
func TestParseModuleLoose(t *testing.T) {
	src := `
func broken(a) {
e:
  x = a ?? 3
  jmp nowhere
q:
  zzz not a statement
}
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("loose parse rejected reducible junk: %v", err)
	}
	if _, err := Parse(src); err == nil {
		t.Fatal("strict parser unexpectedly accepts the junk (test premise broken)")
	}
	if got := len(m.Funcs[0].Blocks); got != 2 {
		t.Fatalf("got %d blocks, want 2", got)
	}
	// Round trip preserves the junk lines verbatim.
	if !strings.Contains(m.String(), "x = a ?? 3") || !strings.Contains(m.String(), "zzz not a statement") {
		t.Errorf("junk lines lost:\n%s", m.String())
	}
}

func TestParseModuleRejectsNonStructure(t *testing.T) {
	for _, src := range []string{
		"",
		"stray statement",
		"func f() {\ne:\n  ret\n", // unclosed
		"}",
		"func f() {\ne:\n  ret\n}\nfunc f2() {", // second unclosed
	} {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("ParseModule accepted %q", src)
		}
	}
}

func TestSplitFunctions(t *testing.T) {
	chunks, err := SplitFunctions(surgerySrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(chunks))
	}
	for _, c := range chunks {
		if _, err := ParseFunction(c); err != nil {
			t.Errorf("chunk does not parse standalone: %v\n%s", err, c)
		}
	}
}

func TestDropBlockRepoints(t *testing.T) {
	m, err := ParseModule(surgerySrc)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Funcs[0]
	// Drop block t (index 1): the branch "br p t e" must re-point to t's
	// own successor j.
	f.DropBlock(1)
	entry := f.Blocks[0]
	if got := entry.Lines[len(entry.Lines)-1]; got != "br p j e" {
		t.Errorf("entry terminator = %q, want %q", got, "br p j e")
	}
	if len(f.Blocks) != 3 {
		t.Errorf("blocks = %d, want 3", len(f.Blocks))
	}
	// The result still parses strictly: the surgery preserved the grammar.
	if _, err := Parse(m.String()); err != nil {
		t.Errorf("post-surgery module does not parse: %v\n%s", err, m.String())
	}
}

func TestDropBlockDegradesTerminators(t *testing.T) {
	src := `
func f(p) {
e:
  br p d d
d:
  ret
}
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping d (a ret block, no ongoing target): the branch referencing
	// it degrades to ret.
	m.Funcs[0].DropBlock(1)
	e := m.Funcs[0].Blocks[0]
	if got := e.Lines[len(e.Lines)-1]; got != "ret" {
		t.Errorf("degraded terminator = %q, want ret", got)
	}
}

func TestRepointTerm(t *testing.T) {
	cases := []struct{ line, from, to, want string }{
		{"jmp a", "a", "b", "jmp b"},
		{"jmp a", "a", "", "ret"},
		{"jmp a", "x", "b", "jmp a"},
		{"br c a b", "a", "z", "br c z b"},
		{"br c a b", "b", "", "jmp a"},
		{"br c a a", "a", "", "ret"},
		{"x = a + b", "a", "z", "x = a + b"},
		{"ret v", "v", "z", "ret v"},
	}
	for _, tc := range cases {
		if got := RepointTerm(tc.line, tc.from, tc.to); got != tc.want {
			t.Errorf("RepointTerm(%q, %q, %q) = %q, want %q", tc.line, tc.from, tc.to, got, tc.want)
		}
	}
}

func TestSimplifyCandidates(t *testing.T) {
	if got := SimplifyTermCandidates("br c a b"); len(got) != 2 || got[0] != "jmp a" || got[1] != "jmp b" {
		t.Errorf("br candidates = %v", got)
	}
	if got := SimplifyTermCandidates("jmp a"); len(got) != 1 || got[0] != "ret" {
		t.Errorf("jmp candidates = %v", got)
	}
	if got := SimplifyTermCandidates("ret v"); len(got) != 1 || got[0] != "ret" {
		t.Errorf("ret v candidates = %v", got)
	}
	if got := SimplifyTermCandidates("ret"); got != nil {
		t.Errorf("bare ret candidates = %v", got)
	}
	if got := SimplifyOperandCandidates("x = a + b"); len(got) != 2 ||
		got[0] != "x = 0 + b" || got[1] != "x = a + 0" {
		t.Errorf("binop operand candidates = %v", got)
	}
	if got := SimplifyOperandCandidates("x = 1 + 2"); got != nil {
		t.Errorf("constant operands produced candidates: %v", got)
	}
	if got := SimplifyOperandCandidates("print v"); len(got) != 1 || got[0] != "print 0" {
		t.Errorf("print candidates = %v", got)
	}
	if got := SimplifyOperandCandidates("br c a b"); len(got) != 1 || got[0] != "br 0 a b" {
		t.Errorf("br cond candidates = %v", got)
	}
}

// TestModuleCorpus: every checked-in corpus seed that the strict parser
// accepts must round-trip through the loose model without changing its
// meaning.
func TestModuleCorpus(t *testing.T) {
	for _, seed := range corpusSeeds(t) {
		fns, err := Parse(seed.Src)
		if err != nil {
			continue
		}
		m, merr := ParseModule(seed.Src)
		if merr != nil {
			t.Errorf("%s: strict parses but loose rejects: %v", seed.Path, merr)
			continue
		}
		fns2, err := Parse(m.String())
		if err != nil {
			t.Errorf("%s: loose round trip does not parse: %v", seed.Path, err)
			continue
		}
		if PrintFunctions(fns) != PrintFunctions(fns2) {
			t.Errorf("%s: loose round trip changed the module", seed.Path)
		}
	}
}
