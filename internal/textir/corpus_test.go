package textir

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// corpusSeeds returns every checked-in textual-IR program, keyed by path:
// the main testdata corpus plus everything quarantined under
// testdata/crashers (inputs that once made a pass fault or fall back,
// captured by cmd/lcmd or promoted from fuzzing).
func corpusSeeds(tb testing.TB) []struct{ Path, Src string } {
	tb.Helper()
	var seeds []struct{ Path, Src string }
	for _, pat := range []string{
		filepath.Join("..", "..", "testdata", "*.ir"),
		filepath.Join("..", "..", "testdata", "crashers", "*.ir"),
	} {
		paths, err := filepath.Glob(pat)
		if err != nil {
			tb.Fatal(err)
		}
		sort.Strings(paths)
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				tb.Fatal(err)
			}
			seeds = append(seeds, struct{ Path, Src string }{p, string(src)})
		}
	}
	if len(seeds) == 0 {
		tb.Fatal("no corpus seeds found under ../../testdata")
	}
	return seeds
}

// TestCrasherReplay lives in replay_test.go (package textir_test): it
// leans on internal/triage for signature checking, which this package
// cannot import without a cycle.
