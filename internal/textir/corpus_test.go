package textir

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/pipeline"
	"lazycm/internal/verify"
)

// corpusSeeds returns every checked-in textual-IR program, keyed by path:
// the main testdata corpus plus everything quarantined under
// testdata/crashers (inputs that once made a pass fault or fall back,
// captured by cmd/lcmd or promoted from fuzzing).
func corpusSeeds(tb testing.TB) []struct{ Path, Src string } {
	tb.Helper()
	var seeds []struct{ Path, Src string }
	for _, pat := range []string{
		filepath.Join("..", "..", "testdata", "*.ir"),
		filepath.Join("..", "..", "testdata", "crashers", "*.ir"),
	} {
		paths, err := filepath.Glob(pat)
		if err != nil {
			tb.Fatal(err)
		}
		sort.Strings(paths)
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				tb.Fatal(err)
			}
			seeds = append(seeds, struct{ Path, Src string }{p, string(src)})
		}
	}
	if len(seeds) == 0 {
		tb.Fatal("no corpus seeds found under ../../testdata")
	}
	return seeds
}

// TestCrasherReplay replays the whole corpus — crucially including every
// quarantined crasher — through the full hardened pipeline. A crasher is
// allowed to be rejected or to fall back; it is not allowed to panic, to
// ship an invalid function, or to ship one that misbehaves.
func TestCrasherReplay(t *testing.T) {
	passes := []pipeline.Pass{
		pipeline.LCMPass(lcm.LCM), pipeline.MRPass(), pipeline.GCSEPass(),
		pipeline.OptPass(), pipeline.CleanupPass(),
	}
	for _, seed := range corpusSeeds(t) {
		t.Run(filepath.Base(seed.Path), func(t *testing.T) {
			fns, err := Parse(seed.Src)
			if err != nil {
				// Unparseable crashers stay in quarantine for the parser
				// fuzzer; the pipeline has nothing to replay.
				t.Skipf("not parseable: %v", err)
			}
			for _, fn := range fns {
				res, err := pipeline.Run(fn, passes, pipeline.Options{
					Verify: true, Runs: 2, MaxRounds: 2,
				})
				if err != nil {
					if !errors.Is(err, pipeline.ErrInvalidInput) {
						t.Fatalf("non-containment error kind: %v\n%s", err, fn)
					}
					continue
				}
				if verr := ir.Validate(res.F); verr != nil {
					t.Fatalf("replay shipped an invalid function: %v\n%s", verr, res.F)
				}
				if eerr := verify.Equivalent(fn, res.F, 1, 2); eerr != nil {
					t.Fatalf("replay shipped a misbehaving function: %v\n%s", eerr, res.F)
				}
			}
		})
	}
}
