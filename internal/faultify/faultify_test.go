package faultify

import (
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/pipeline"
	"lazycm/internal/textir"
	"lazycm/internal/verify"
)

// The canonical diamond with a loop back-edge candidate: every fault in
// the taxonomy applies to it.
const victimSrc = `
func victim(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  print x
  jmp join
else:
  nop
  jmp join
join:
  y = a + b
  ret y
}
`

func victim(t *testing.T) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(victimSrc)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestNoFalsePositives: the unfaulted victim passes every checker the
// pipeline runs, so any detection below is attributable to the fault.
func TestNoFalsePositives(t *testing.T) {
	f := victim(t)
	if err := ir.Validate(f); err != nil {
		t.Fatal(err)
	}
	if err := verify.Equivalent(f, f.Clone(), 1, 16); err != nil {
		t.Fatal(err)
	}
}

// TestEveryFaultClassIsDetected applies each fault to a fresh victim and
// requires its designated checker to fire — and the cheaper checkers to
// stay silent, proving the class labels are tight.
func TestEveryFaultClassIsDetected(t *testing.T) {
	if len(All()) < 10 {
		t.Fatalf("taxonomy shrank: %d faults", len(All()))
	}
	for _, ft := range All() {
		ft := ft
		t.Run(ft.Name, func(t *testing.T) {
			orig := victim(t)
			f := orig.Clone()
			tempFor, ok := ft.Apply(f)
			if !ok {
				t.Fatalf("fault %s does not apply to the victim", ft.Name)
			}
			structural := ir.Validate(f)
			switch ft.Class {
			case Structural:
				if structural == nil {
					t.Fatal("ir.Validate missed a structural fault")
				}
			case Temps:
				if structural != nil {
					t.Fatalf("temps fault should be structurally valid: %v", structural)
				}
				if err := verify.TempsDefined(f, tempFor); err == nil {
					t.Fatal("verify.TempsDefined missed an undefined temp")
				}
			case Semantic:
				if structural != nil {
					t.Fatalf("semantic fault should be structurally valid: %v", structural)
				}
				if err := verify.TempsDefined(f, tempFor); err != nil {
					t.Fatalf("semantic fault should pass TempsDefined: %v", err)
				}
				if err := verify.Equivalent(orig, f, 11, 16); err == nil {
					t.Fatal("verify.Equivalent missed a semantic fault")
				}
			default:
				t.Fatalf("unknown class %q", ft.Class)
			}
		})
	}
}

// TestStalePredsNeedsFreeValidate documents why ir.Validate exists as a
// free function: the method-level checks accept a function whose cached
// predecessor lists no longer match its terminators; only the pipeline's
// edge cross-check rejects it.
func TestStalePredsNeedsFreeValidate(t *testing.T) {
	ft, ok := ByName("stale-preds")
	if !ok {
		t.Fatal("stale-preds missing from taxonomy")
	}
	f := victim(t)
	if _, ok := ft.Apply(f); !ok {
		t.Fatal("fault does not apply")
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("method Validate should accept stale preds, got: %v", err)
	}
	if err := ir.Validate(f); err == nil {
		t.Fatal("free ir.Validate should reject stale preds")
	}
}

// TestPipelineContainsEveryFault runs each fault as if a buggy pass had
// produced it and requires the pipeline to discard the output and fall
// back to the original function.
func TestPipelineContainsEveryFault(t *testing.T) {
	for _, ft := range All() {
		ft := ft
		t.Run(ft.Name, func(t *testing.T) {
			orig := victim(t)
			buggy := pipeline.Pass{
				Name: ft.Name,
				Run: func(f *ir.Function, o pipeline.Options) (*ir.Function, map[ir.Expr]string, error) {
					tempFor, ok := ft.Apply(f)
					if !ok {
						t.Fatal("fault does not apply")
					}
					return f, tempFor, nil
				},
			}
			res, err := pipeline.Run(orig, []pipeline.Pass{buggy}, pipeline.Options{Verify: true, Seed: 11, Runs: 16})
			if err != nil {
				t.Fatal(err)
			}
			if !res.FellBack() {
				t.Fatalf("pipeline shipped a %s-faulted function", ft.Name)
			}
			if res.F.String() != orig.String() {
				t.Fatal("fallback is not the original function")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("wrong-operator"); !ok {
		t.Fatal("wrong-operator missing")
	}
	if _, ok := ByName("nonsense"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
}
