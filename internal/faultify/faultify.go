// Package faultify injects known classes of compiler bugs into IR
// functions. It exists to prove, in tests, that the hardened pipeline's
// safety nets actually hold: every fault class here is required to be
// detected by ir.Validate, verify.TempsDefined or verify.Equivalent —
// the three checks pipeline.Run interposes between passes. A fault class
// that no checker detects is a hole in the containment story and fails
// the test suite.
//
// Each Fault mutates a function the way a buggy transformation would:
// retargeting an edge outside the function, forgetting Recompute after a
// CFG edit, emitting a read of a temporary that is never defined,
// flipping an operator, dropping a statement. The Class field names the
// cheapest checker expected to catch it.
package faultify

import (
	"fmt"

	"lazycm/internal/ir"
)

// Class names the checker a fault class is expected to trip.
type Class string

const (
	// Structural faults are caught by ir.Validate.
	Structural Class = "structural"
	// Temps faults are caught by verify.TempsDefined (the function stays
	// structurally valid but reads an undefined PRE temporary).
	Temps Class = "temps"
	// Semantic faults are caught by verify.Equivalent (the function stays
	// structurally valid but computes different values).
	Semantic Class = "semantic"
)

// Fault is one injectable bug class.
type Fault struct {
	// Name identifies the fault class.
	Name string
	// Class is the checker expected to detect the fault.
	Class Class
	// Apply mutates f in place. It returns the expression→temporary map
	// the fault pretends its "pass" produced (nil for most classes) and
	// false when the fault does not apply to this function (e.g. no
	// branch to corrupt).
	Apply func(f *ir.Function) (map[ir.Expr]string, bool)
}

// firstBinOp returns the location of the first BinOp statement.
func firstBinOp(f *ir.Function) (*ir.Block, int, bool) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Kind == ir.BinOp {
				return b, i, true
			}
		}
	}
	return nil, 0, false
}

// firstJump returns the first block ending in an unconditional jump.
func firstJump(f *ir.Function) (*ir.Block, bool) {
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.Jump {
			return b, true
		}
	}
	return nil, false
}

// observedBinOp returns the location of the last BinOp whose destination
// is read afterwards in the same block (by a later statement or the
// terminator), i.e. a computation whose removal or corruption is
// observable to the interpreter.
func observedBinOp(f *ir.Function) (*ir.Block, int, bool) {
	var scratch []string
	reads := func(vs []string, v string) bool {
		for _, u := range vs {
			if u == v {
				return true
			}
		}
		return false
	}
	for bi := len(f.Blocks) - 1; bi >= 0; bi-- {
		b := f.Blocks[bi]
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Kind != ir.BinOp {
				continue
			}
			if reads(b.Term.UsedVars(scratch[:0]), in.Dst) {
				return b, i, true
			}
			for j := i + 1; j < len(b.Instrs); j++ {
				if reads(b.Instrs[j].UsedVars(scratch[:0]), in.Dst) {
					return b, i, true
				}
				if b.Instrs[j].Defs() == in.Dst {
					break
				}
			}
		}
	}
	return nil, 0, false
}

// All returns the full fault taxonomy, one entry per class of bug the
// pipeline's checkers must catch.
func All() []Fault {
	return []Fault{
		{
			// A terminator targeting a block that is not part of the
			// function — the result of splicing in a block without
			// registering it.
			Name: "dangling-edge", Class: Structural,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				b, ok := firstJump(f)
				if !ok {
					return nil, false
				}
				phantom := &ir.Block{Name: "phantom", Term: ir.Terminator{Kind: ir.Ret}}
				b.Term.Then = phantom
				return nil, true
			},
		},
		{
			// Block IDs out of sync with Blocks order — a pass reordered
			// or inserted blocks and forgot Recompute, so every analysis
			// indexes the wrong state row.
			Name: "stale-ids", Class: Structural,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				if len(f.Blocks) < 2 {
					return nil, false
				}
				f.Blocks[0].ID, f.Blocks[1].ID = f.Blocks[1].ID, f.Blocks[0].ID
				return nil, true
			},
		},
		{
			// An edge retargeted inside the function without Recompute:
			// IDs stay dense, but the predecessor lists no longer match
			// the terminators. Only the pipeline's edge cross-check
			// (ir.Validate, the free function) sees this.
			Name: "stale-preds", Class: Structural,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				b, ok := firstJump(f)
				if !ok || b.Term.Then == f.Entry() {
					return nil, false
				}
				// Retarget the jump to the entry block and do NOT
				// Recompute. Entry stays reachable and keeps its path to
				// the exit, so the method-level checks all pass; only the
				// pipeline's terminator/predecessor cross-check notices
				// the stale lists.
				b.Term.Then = f.Entry()
				return nil, true
			},
		},
		{
			// A block no path from entry reaches — dead scaffolding a
			// pass created and never wired in.
			Name: "unreachable-block", Class: Structural,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				orphan := f.AddBlock(f.FreshBlockName("orphan"))
				orphan.Term = ir.Terminator{Kind: ir.Ret}
				f.Recompute()
				return nil, true
			},
		},
		{
			// A block from which no return is reachable — an infinite
			// self-loop replacing the exit, violating the paper's
			// requirement that every node lie on an entry→exit path.
			Name: "no-exit", Class: Structural,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				for _, b := range f.Blocks {
					if b.Term.Kind == ir.Ret {
						b.Term = ir.Terminator{Kind: ir.Jump, Then: b}
						f.Recompute()
						return nil, true
					}
				}
				return nil, false
			},
		},
		{
			// A terminator whose kind is not Jump/Branch/Ret — memory
			// corruption or an uninitialized struct escaping a builder.
			Name: "bad-terminator", Class: Structural,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				f.Blocks[len(f.Blocks)-1].Term = ir.Terminator{Kind: ir.TermKind(99)}
				return nil, true
			},
		},
		{
			// A statement with an impossible kind or missing destination.
			Name: "bad-instr", Class: Structural,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				b, i, ok := firstBinOp(f)
				if !ok {
					return nil, false
				}
				b.Instrs[i].Dst = ""
				return nil, true
			},
		},
		{
			// A PRE rewrite that replaces a computation with a read of a
			// temporary no insertion ever defines — wrong placement
			// points, the classic code-motion bug.
			Name: "undefined-temp", Class: Temps,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				b, i, ok := firstBinOp(f)
				if !ok {
					return nil, false
				}
				e, _ := b.Instrs[i].Expr()
				tmp := f.FreshVarName("t")
				b.Instrs[i] = ir.NewCopy(b.Instrs[i].Dst, ir.Var(tmp))
				return map[ir.Expr]string{e: tmp}, true
			},
		},
		{
			// A structurally perfect function computing the wrong value:
			// one operator flipped.
			Name: "wrong-operator", Class: Semantic,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				b, i, ok := observedBinOp(f)
				if !ok {
					return nil, false
				}
				if b.Instrs[i].Op == ir.Add {
					b.Instrs[i].Op = ir.Sub
				} else {
					b.Instrs[i].Op = ir.Add
				}
				return nil, true
			},
		},
		{
			// A defining statement silently deleted — downstream reads
			// see a stale or zero value.
			Name: "dropped-instr", Class: Semantic,
			Apply: func(f *ir.Function) (map[ir.Expr]string, bool) {
				b, i, ok := observedBinOp(f)
				if !ok {
					return nil, false
				}
				b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
				return nil, true
			},
		},
	}
}

// RunFunc adapts the fault to the pass-body shape the hardened pipeline
// expects (without importing it): apply the fault to f in place and
// report the mutated function plus the pretend expression→temporary map,
// exactly as the buggy transformation the fault impersonates would. It
// errors when the fault has nothing to corrupt in f — which is the
// property the crash-triage reducer leans on: a minimization step that
// shrinks a program past the fault's attachment point changes the
// failure signature and is rejected, so every fault class stays
// reproducible on the minimized program.
func (ft Fault) RunFunc(f *ir.Function) (*ir.Function, map[ir.Expr]string, error) {
	tempFor, ok := ft.Apply(f)
	if !ok {
		return nil, nil, fmt.Errorf("faultify: %s does not apply to %s", ft.Name, f.Name)
	}
	return f, tempFor, nil
}

// ByName returns the named fault. The boolean is false for unknown names.
func ByName(name string) (Fault, bool) {
	for _, ft := range All() {
		if ft.Name == name {
			return ft, true
		}
	}
	return Fault{}, false
}
