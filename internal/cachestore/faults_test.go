package cachestore

import (
	"os"
	"path/filepath"
	"testing"

	"lazycm/internal/vfs"
)

// TestWriteErrorsSeparateFromCorrupt: a failed Put counts only as a
// write error — it must not inflate the corruption counter, which is
// reserved for verification rejecting bytes the disk returned.
func TestWriteErrorsSeparateFromCorrupt(t *testing.T) {
	dir := t.TempDir()
	fault := vfs.NewFaultFS(vfs.OS, 5)
	s, err := OpenFS(fault, dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	key := keyFor("wk")
	fault.SetWindow(vfs.Window{WriteErrProb: 1})
	if err := s.Put(key, []byte("payload")); err == nil {
		t.Fatal("Put under ENOSPC must fail")
	}
	if got := s.WriteErrors(); got != 1 {
		t.Fatalf("WriteErrors = %d, want 1", got)
	}
	if got := s.CorruptDropped(); got != 0 {
		t.Fatalf("CorruptDropped = %d, want 0 — a write failure is not corruption", got)
	}
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("failed Put must not be indexed")
	}

	// Disk recovers: the same Put lands and reads back.
	fault.SetWindow(vfs.Window{})
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if p, ok, _ := s.Get(key); !ok || string(p) != "payload" {
		t.Fatalf("Get after recovery = %q, %v", p, ok)
	}
}

// TestCorruptSeparateFromWriteErrors: an on-disk entry whose bytes
// fail verification counts only as corrupt-dropped.
func TestCorruptSeparateFromWriteErrors(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	key := keyFor("ck")
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Flip bytes underneath the store.
	path := filepath.Join(dir, key+entrySuffix)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok, corrupt := s.Get(key); ok || !corrupt {
		t.Fatalf("Get over flipped bytes = ok=%v corrupt=%v, want miss+corrupt", ok, corrupt)
	}
	if got := s.CorruptDropped(); got != 1 {
		t.Fatalf("CorruptDropped = %d, want 1", got)
	}
	if got := s.WriteErrors(); got != 0 {
		t.Fatalf("WriteErrors = %d, want 0 — corruption is not a write failure", got)
	}
	if got := s.ReadErrors(); got != 0 {
		t.Fatalf("ReadErrors = %d, want 0 — the disk returned bytes fine", got)
	}
	// The corrupt entry was unlinked: it can never be served again.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still on disk: %v", err)
	}
}

// TestReadErrorsKeepEntryIndexed: an EIO on read is a transient disk
// fault, not corruption — the entry stays indexed and is served again
// once the disk recovers.
func TestReadErrorsKeepEntryIndexed(t *testing.T) {
	dir := t.TempDir()
	fault := vfs.NewFaultFS(vfs.OS, 9)
	s, err := OpenFS(fault, dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := keyFor("rk")
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	fault.SetWindow(vfs.Window{ReadErrProb: 1})
	if _, ok, corrupt := s.Get(key); ok || corrupt {
		t.Fatalf("Get under EIO = ok=%v corrupt=%v, want plain miss", ok, corrupt)
	}
	if got := s.ReadErrors(); got != 1 {
		t.Fatalf("ReadErrors = %d, want 1", got)
	}
	if got := s.CorruptDropped(); got != 0 {
		t.Fatalf("CorruptDropped = %d, want 0 — an unreadable disk is not corruption", got)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d after EIO, want 1 — the entry must stay indexed", got)
	}

	fault.SetWindow(vfs.Window{})
	if p, ok, _ := s.Get(key); !ok || string(p) != "payload" {
		t.Fatalf("Get after disk recovery = %q, %v", p, ok)
	}
}

// TestTornRenameDeindexesDroppedEntry: a torn rename during Put can
// drop the previously published entry for the key; the store must
// notice and deindex it so later reads are plain misses, not
// corruption reports.
func TestTornRenameDeindexesDroppedEntry(t *testing.T) {
	dir := t.TempDir()
	fault := vfs.NewFaultFS(vfs.OS, 13)
	s, err := OpenFS(fault, dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	key := keyFor("tk")
	if err := s.Put(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	fault.SetWindow(vfs.Window{TornRenameProb: 1})
	if err := s.Put(key, []byte("v2")); err == nil {
		t.Fatal("Put under torn rename must fail")
	}
	fault.SetWindow(vfs.Window{})
	if got := s.WriteErrors(); got == 0 {
		t.Fatal("torn rename must count as a write error")
	}
	if _, ok, corrupt := s.Get(key); ok || corrupt {
		t.Fatalf("Get after torn rename = ok=%v corrupt=%v, want plain miss", ok, corrupt)
	}
	if got := s.CorruptDropped(); got != 0 {
		t.Fatalf("CorruptDropped = %d, want 0", got)
	}
	// The key is recomputable: a healthy Put republishes it.
	if err := s.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if p, ok, _ := s.Get(key); !ok || string(p) != "v2" {
		t.Fatalf("Get after republish = %q, %v", p, ok)
	}
}

// TestEvictRemoveFailureCountsWriteError: an eviction whose unlink
// fails counts as a write error and still frees the index slot.
func TestEvictRemoveFailureCountsWriteError(t *testing.T) {
	dir := t.TempDir()
	fault := vfs.NewFaultFS(vfs.OS, 17)
	// Budget fits roughly one entry, so the second Put evicts the first.
	s, err := OpenFS(fault, dir, 200)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := keyFor("e1"), keyFor("e2")
	if err := s.Put(k1, []byte("payload-one")); err != nil {
		t.Fatal(err)
	}
	fault.SetWindow(vfs.Window{RemoveErrProb: 1})
	if err := s.Put(k2, []byte("payload-two")); err != nil {
		t.Fatalf("Put should survive a failed eviction unlink: %v", err)
	}
	fault.SetWindow(vfs.Window{})
	if got := s.WriteErrors(); got == 0 {
		t.Fatal("failed evict unlink must count as a write error")
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 — eviction must still free the index slot", got)
	}
	if p, ok, _ := s.Get(k2); !ok || string(p) != "payload-two" {
		t.Fatalf("Get(k2) = %q, %v", p, ok)
	}
}
