// Package cachestore is the durable tier of the content-addressed
// result cache: a directory of self-verifying entry files, bounded by
// bytes with LRU eviction, that a restarted server re-indexes on boot
// so its warm state survives the process.
//
// The store is only ever an accelerator, never an authority. LCM makes
// every result a pure function of its cache key (program + directives),
// which is what licenses persisting and sharing results at all — but
// only as long as a stored entry provably is what was computed. So
// every entry embeds its own key and a sha256 of its payload, both
// re-verified on every read (disk reads here, peer fetches in
// internal/lcmclient); anything truncated, bit-flipped, or misfiled
// decodes as a miss, is unlinked, and is counted — never served. Writes
// are crash-atomic (tmp + fsync + rename via internal/atomicio), so a
// process killed mid-write leaves the previous entry or an ignorable
// *.tmp, never a torn file.
package cachestore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lazycm/internal/atomicio"
	"lazycm/internal/vfs"
)

// magic versions the entry encoding; bump it and old entries simply
// miss (and are dropped as corrupt) instead of being misread.
const magic = "lcmcache1"

// entrySuffix names entry files: <key>.ce under the store directory.
const entrySuffix = ".ce"

// DefaultMaxBytes bounds the store when Open is given no budget.
const DefaultMaxBytes = 64 << 20

// ValidKey reports whether key is safe as both an entry filename and a
// URL path element: lowercase-hex, long enough to be a real digest.
// Cache keys are hex sha256 strings; anything else is rejected before
// it can touch the filesystem.
func ValidKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Encode wraps payload in the self-verifying entry format: one header
// line binding the entry to its key, its payload hash, and its exact
// length, then the payload bytes. The same bytes travel to disk and
// over peer-fill HTTP, so both paths share one Decode and one set of
// integrity guarantees.
func Encode(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %s %d\n", magic, key, hex.EncodeToString(sum[:]), len(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// Decode verifies an encoded entry against the key the caller asked
// for and returns its payload. Every failure mode — wrong magic, a
// different key's entry, truncation, trailing garbage, payload bytes
// that no longer hash to the recorded sum — is an error; callers treat
// any error as a cache miss.
func Decode(key string, data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("cachestore: truncated header")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 || fields[0] != magic {
		return nil, fmt.Errorf("cachestore: malformed header")
	}
	if fields[1] != key {
		return nil, fmt.Errorf("cachestore: entry is for key %s, not %s", fields[1], key)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("cachestore: malformed length")
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("cachestore: payload is %d bytes, header says %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return nil, fmt.Errorf("cachestore: payload hash mismatch")
	}
	return payload, nil
}

// Store is the on-disk LRU. All methods are safe for concurrent use;
// file I/O happens under the index lock, which is fine at cache-entry
// sizes and keeps the index and the directory from disagreeing.
type Store struct {
	mu       sync.Mutex
	fsys     vfs.FS
	dir      string
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element

	// The three failure signals are deliberately distinct: corrupt
	// means verification rejected bytes the disk returned (the scary
	// one), readErrs means the disk would not return bytes at all, and
	// writeErrs means the disk would not take bytes. Blurring them
	// would make an ENOSPC storm look like corruption.
	corrupt   atomic.Int64 // entries dropped by integrity verification
	readErrs  atomic.Int64 // reads failed by IO errors (entry kept, treated as a miss)
	writeErrs atomic.Int64 // puts/evicts/drops failed by IO errors
}

type diskEntry struct {
	key  string
	size int64
}

// Open indexes dir as a store bounded by maxBytes (0 or negative means
// DefaultMaxBytes), creating the directory if needed. Existing entries
// are adopted in mtime order — the previous process's recency, near
// enough — so a restarted server's first reads hit immediately; their
// contents are not read here, because every Get re-verifies anyway.
// Abandoned *.tmp files from a crashed writer are swept first.
func Open(dir string, maxBytes int64) (*Store, error) {
	return OpenFS(vfs.OS, dir, maxBytes)
}

// OpenFS is Open against an explicit filesystem — the seam fault
// injection and the server's disk-health observer use.
func OpenFS(fsys vfs.FS, dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	atomicio.SweepTmpFS(fsys, dir)
	s := &Store{fsys: fsys, dir: dir, maxBytes: maxBytes, ll: list.New(), byKey: make(map[string]*list.Element)}

	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var all []found
	for _, e := range ents {
		name := e.Name()
		key, ok := strings.CutSuffix(name, entrySuffix)
		if !ok || e.IsDir() || !ValidKey(key) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		all = append(all, found{key, info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].mtime < all[b].mtime })
	for _, f := range all { // oldest first, so the newest ends up at the front
		s.byKey[f.key] = s.ll.PushFront(&diskEntry{key: f.key, size: f.size})
		s.bytes += f.size
	}
	s.evictLocked()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Get reads and verifies the entry for key, marking it most recently
// used. The third result reports that an entry existed but failed
// verification — it has already been unlinked and counted, and must be
// treated as a plain miss by the caller.
//
// An IO error on the read (EIO, a stalled disk hitting its deadline)
// is NOT corruption: the entry stays indexed — the bytes may be fine
// once the disk recovers — and the caller sees a plain miss while
// ReadErrors counts the fault. A file that has vanished underneath the
// index (a torn rename dropped it) is also a plain miss; only bytes
// the disk returned and verification rejected count as corrupt.
func (s *Store) Get(key string) (payload []byte, ok, corrupt bool) {
	if s == nil {
		return nil, false, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.byKey[key]
	if !found {
		return nil, false, false
	}
	data, err := s.fsys.ReadFile(s.path(key))
	switch {
	case errors.Is(err, iofs.ErrNotExist):
		// The file is gone (torn rename, external cleanup): deindex
		// without touching the disk further. A plain miss.
		s.removeIndexLocked(el)
		return nil, false, false
	case err != nil:
		s.readErrs.Add(1)
		return nil, false, false
	}
	payload, err = Decode(key, data)
	if err != nil {
		// Corrupt, truncated, or misfiled: drop it so it can never be
		// served, and surface the drop to the caller's counters.
		s.dropLocked(el)
		s.corrupt.Add(1)
		return nil, false, true
	}
	s.ll.MoveToFront(el)
	return payload, true, false
}

// Put durably stores payload under key, evicting least recently used
// entries past the byte budget. A payload that alone exceeds the budget
// is skipped: the store bounds disk, it does not promise admission.
func (s *Store) Put(key string, payload []byte) error {
	if s == nil || !ValidKey(key) {
		return nil
	}
	data := Encode(key, payload)
	size := int64(len(data))
	if size > s.maxBytes {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := atomicio.WriteFileFS(s.fsys, s.path(key), data, 0o644); err != nil {
		s.writeErrs.Add(1)
		// A torn rename may have dropped the previously published
		// entry for this key; deindex it so reads go straight to miss
		// instead of discovering the hole later.
		if el, ok := s.byKey[key]; ok {
			if _, statErr := s.fsys.Stat(s.path(key)); errors.Is(statErr, iofs.ErrNotExist) {
				s.removeIndexLocked(el)
			}
		}
		return err
	}
	if el, ok := s.byKey[key]; ok {
		ent := el.Value.(*diskEntry)
		s.bytes += size - ent.size
		ent.size = size
		s.ll.MoveToFront(el)
	} else {
		s.byKey[key] = s.ll.PushFront(&diskEntry{key: key, size: size})
		s.bytes += size
	}
	s.evictLocked()
	return nil
}

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes reports the indexed entry bytes on disk.
func (s *Store) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// CorruptDropped reports how many entries verification has dropped.
func (s *Store) CorruptDropped() int64 {
	if s == nil {
		return 0
	}
	return s.corrupt.Load()
}

// ReadErrors reports how many reads failed with IO errors (the entry
// stayed indexed and the read was served as a miss).
func (s *Store) ReadErrors() int64 {
	if s == nil {
		return 0
	}
	return s.readErrs.Load()
}

// WriteErrors reports how many puts, evictions, or drops failed with
// IO errors — distinct from CorruptDropped, which counts verification
// rejecting bytes the disk did return.
func (s *Store) WriteErrors() int64 {
	if s == nil {
		return 0
	}
	return s.writeErrs.Load()
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}

// dropLocked unlinks one entry and removes it from the index. A failed
// unlink counts as a write error; the file stays behind for a later
// boot scan, but the index no longer trusts it.
func (s *Store) dropLocked(el *list.Element) {
	ent := el.Value.(*diskEntry)
	if err := s.fsys.Remove(s.path(ent.key)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		s.writeErrs.Add(1)
	}
	s.removeIndexLocked(el)
}

// removeIndexLocked forgets one entry without touching the disk.
func (s *Store) removeIndexLocked(el *list.Element) {
	ent := el.Value.(*diskEntry)
	s.ll.Remove(el)
	delete(s.byKey, ent.key)
	s.bytes -= ent.size
}

// evictLocked unlinks least recently used entries until the byte budget
// holds.
func (s *Store) evictLocked() {
	for s.bytes > s.maxBytes && s.ll.Len() > 0 {
		s.dropLocked(s.ll.Back())
	}
}
