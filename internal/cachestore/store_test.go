package cachestore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func keyFor(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	key := keyFor("k")
	payload := []byte(`{"program":"func f() { ret }\n"}`)
	got, err := Decode(key, Encode(key, payload))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip = %q, want %q", got, payload)
	}
}

// TestDecodeRejectsEveryTamper: each way an entry can rot — truncation,
// a flipped payload bit, a flipped hash character, an entry filed under
// another key, trailing garbage, the wrong magic — must decode as an
// error, never as a payload.
func TestDecodeRejectsEveryTamper(t *testing.T) {
	key := keyFor("k")
	payload := []byte("the payload bytes")
	good := Encode(key, payload)
	cases := map[string][]byte{
		"empty":        {},
		"header-only":  good[:10],
		"truncated":    good[:len(good)-3],
		"extended":     append(append([]byte{}, good...), 'x'),
		"bit-flip":     flipByte(good, len(good)-1),
		"header-flip":  flipByte(good, len(magic)+2+len(key)+4),
		"wrong-magic":  append([]byte("xx"), good...),
		"other-key":    Encode(keyFor("other"), payload),
		"length-lies":  []byte(magic + " " + key + " " + hex.EncodeToString(sumOf(payload)) + " 3\n" + string(payload)),
		"bad-length":   []byte(magic + " " + key + " " + hex.EncodeToString(sumOf(payload)) + " nope\n" + string(payload)),
		"short-header": []byte(magic + " " + key + "\n" + string(payload)),
	}
	for name, data := range cases {
		if _, err := Decode(key, data); err == nil {
			t.Errorf("%s: Decode accepted tampered entry", name)
		}
	}
}

func sumOf(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0x40
	return out
}

func TestValidKey(t *testing.T) {
	if !ValidKey(keyFor("x")) {
		t.Error("rejected a real sha256 hex key")
	}
	for _, bad := range []string{"", "short", strings.Repeat("g", 64), "../../../../etc/passwd", strings.Repeat("a", 200), "ABCDEF0123456789"} {
		if ValidKey(bad) {
			t.Errorf("accepted invalid key %q", bad)
		}
	}
}

func TestStorePutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	key := keyFor("p1")
	payload := []byte("result bytes")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, corrupt := s.Get(key)
	if !ok || corrupt || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v, %v", got, ok, corrupt)
	}
	if s.Len() != 1 || s.Bytes() <= int64(len(payload)) {
		t.Errorf("Len=%d Bytes=%d after one put", s.Len(), s.Bytes())
	}
	if _, ok, _ := s.Get(keyFor("absent")); ok {
		t.Error("hit for a key never stored")
	}
}

// TestStoreWarmStart: a second Open over the same directory serves the
// first process's entries — the restart story the whole tier exists for.
func TestStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 1<<20)
	for i := 0; i < 5; i++ {
		if err := s1.Put(keyFor(fmt.Sprint(i)), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crashed writer's leftover: must be swept, not indexed.
	if err := os.WriteFile(filepath.Join(dir, "junk-1.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 1<<20)
	if s2.Len() != 5 {
		t.Fatalf("warm start indexed %d entries, want 5", s2.Len())
	}
	for i := 0; i < 5; i++ {
		got, ok, corrupt := s2.Get(keyFor(fmt.Sprint(i)))
		if !ok || corrupt || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("entry %d after restart: %q, %v, %v", i, got, ok, corrupt)
		}
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(left) != 0 {
		t.Errorf("tmp leftovers survived Open: %v", left)
	}
}

// TestStoreCorruptEntryDroppedNotServed: a bit-flipped entry and a
// truncated entry both read as misses, are unlinked so they cannot
// return, and are counted.
func TestStoreCorruptEntryDroppedNotServed(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	kFlip, kTrunc := keyFor("flip"), keyFor("trunc")
	for _, k := range []string{kFlip, kTrunc} {
		if err := s.Put(k, []byte("precious result")); err != nil {
			t.Fatal(err)
		}
	}
	// Rot both on disk behind the store's back.
	flipOnDisk(t, filepath.Join(dir, kFlip+entrySuffix))
	truncOnDisk(t, filepath.Join(dir, kTrunc+entrySuffix))

	for _, k := range []string{kFlip, kTrunc} {
		if payload, ok, corrupt := s.Get(k); ok || !corrupt {
			t.Fatalf("corrupt entry served: %q, ok=%v corrupt=%v", payload, ok, corrupt)
		}
		if _, err := os.Stat(filepath.Join(dir, k+entrySuffix)); !os.IsNotExist(err) {
			t.Errorf("corrupt entry %s not unlinked", k)
		}
		// Dropped means gone: the next read is a plain miss, not corrupt again.
		if _, ok, corrupt := s.Get(k); ok || corrupt {
			t.Errorf("dropped entry %s resurfaced: ok=%v corrupt=%v", k, ok, corrupt)
		}
	}
	if got := s.CorruptDropped(); got != 2 {
		t.Errorf("CorruptDropped = %d, want 2", got)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after dropping everything", s.Len())
	}
}

func flipOnDisk(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func truncOnDisk(t *testing.T, path string) {
	t.Helper()
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
}

// TestStoreLRUEviction: the byte budget holds by unlinking least
// recently used entries; touching an entry protects it.
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("x", 100))
	one := int64(len(Encode(keyFor("size"), payload)))
	s := mustOpen(t, dir, 3*one)
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = keyFor(fmt.Sprint(i))
	}
	for _, k := range keys[:3] {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest so it is no longer the eviction victim.
	if _, ok, _ := s.Get(keys[0]); !ok {
		t.Fatal("lost an entry within budget")
	}
	if err := s.Put(keys[3], payload); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Bytes() > 3*one {
		t.Fatalf("Len=%d Bytes=%d after eviction, want 3 entries within %d bytes", s.Len(), s.Bytes(), 3*one)
	}
	if _, ok, _ := s.Get(keys[1]); ok {
		t.Error("LRU victim survived")
	}
	for _, k := range []string{keys[0], keys[2], keys[3]} {
		if _, ok, _ := s.Get(k); !ok {
			t.Errorf("recently used entry %s evicted", k)
		}
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+entrySuffix)); len(files) != 3 {
		t.Errorf("%d entry files on disk, want 3", len(files))
	}

	// Oversized payloads are skipped, not admitted-then-thrashed.
	if err := s.Put(keyFor("huge"), []byte(strings.Repeat("y", 4*100+200))); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(keyFor("huge")); ok {
		t.Error("over-budget payload admitted")
	}
}

// TestStoreWarmStartRespectsBudgetAndRecency: reopening under a smaller
// budget evicts the stalest entries, and the mtime order adopted at
// Open matches the previous process's write order.
func TestStoreWarmStartRespectsBudgetAndRecency(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("z", 100))
	one := int64(len(Encode(keyFor("size"), payload)))
	s1 := mustOpen(t, dir, 10*one)
	for i := 0; i < 4; i++ {
		if err := s1.Put(keyFor(fmt.Sprint(i)), payload); err != nil {
			t.Fatal(err)
		}
		// mtime granularity on some filesystems is coarse; space the
		// writes out so recency ordering is observable.
		time.Sleep(5 * time.Millisecond)
	}
	s2 := mustOpen(t, dir, 2*one)
	if s2.Len() != 2 {
		t.Fatalf("reopen under tight budget kept %d entries, want 2", s2.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok, _ := s2.Get(keyFor(fmt.Sprint(i))); ok {
			t.Errorf("stale entry %d survived the reopen eviction", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok, corrupt := s2.Get(keyFor(fmt.Sprint(i))); !ok || corrupt {
			t.Errorf("fresh entry %d lost in reopen: ok=%v corrupt=%v", i, ok, corrupt)
		}
	}
}

// TestStoreNilIsAlwaysMiss: like the in-memory cache, a nil *Store is a
// valid always-miss tier.
func TestStoreNilIsAlwaysMiss(t *testing.T) {
	var s *Store
	if _, ok, corrupt := s.Get(keyFor("k")); ok || corrupt {
		t.Error("nil store produced a hit")
	}
	if err := s.Put(keyFor("k"), []byte("x")); err != nil {
		t.Error(err)
	}
	if s.Len() != 0 || s.Bytes() != 0 || s.CorruptDropped() != 0 {
		t.Error("nil store reported non-zero gauges")
	}
}
