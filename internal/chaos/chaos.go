// Package chaos is the service-level fault injector behind lcmd's
// test-only -chaos flag. Where internal/faultify proves the *pipeline*
// contains every class of buggy transformation, this package proves the
// *service* holds its invariants while the machinery around the
// pipeline misbehaves: requests slow down, workers stall past their
// deadlines, handler goroutines panic outright, buggy passes are
// spliced into the pipeline, and cached results rot in memory.
//
// Safety of injected passes: only faultify classes that the pipeline's
// always-on checkers detect (Structural via ir.Validate, Temps via
// verify.TempsDefined) are injected. Semantic faults are deliberately
// excluded — they are only caught by the optional verify battery, which
// the degradation ladder switches off under load, and the whole point
// of the chaos soak is that no injected fault may ever surface as a
// wrong answer.
//
// Every decision comes from one seeded PRNG, so a chaos run is
// reproducible from its seed.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lazycm/internal/faultify"
)

// Config sets the per-event injection probabilities. A zero Config
// injects nothing.
type Config struct {
	// Seed drives the single PRNG behind every decision.
	Seed int64
	// LatencyP is the probability a request gets extra latency, uniform
	// in (0, Latency], injected before its work starts.
	LatencyP float64
	Latency  time.Duration
	// StallP is the probability a worker stalls for Stall, ignoring the
	// request context — a wedged worker, not a slow one.
	StallP float64
	Stall  time.Duration
	// PanicP is the probability of an induced panic on the worker
	// goroutine, inside the per-request guard.
	PanicP float64
	// FaultP is the probability a buggy pass (a detectable
	// internal/faultify class) is spliced into the request's pipeline.
	FaultP float64
	// CorruptP is the probability a cache read is corrupted in place
	// (one bit flipped in the stored program).
	CorruptP float64
}

// Injector makes the per-event decisions. All methods are safe for
// concurrent use.
type Injector struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	faults []faultify.Fault

	// Event counters, exported for the soak's audit trail.
	Latencies   atomic.Int64
	Stalls      atomic.Int64
	Panics      atomic.Int64
	Faults      atomic.Int64
	Corruptions atomic.Int64
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	in := &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for _, ft := range faultify.All() {
		// Structural and Temps classes are detected by checks the
		// pipeline always runs; Semantic needs the verify battery, which
		// degraded levels turn off, so it must never be injected here.
		if ft.Class != faultify.Semantic {
			in.faults = append(in.faults, ft)
		}
	}
	return in
}

// roll draws one decision under the shared PRNG.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// Delay returns the extra latency to inject before a request's work, or
// 0 for none.
func (in *Injector) Delay() time.Duration {
	if in == nil || !in.roll(in.cfg.LatencyP) || in.cfg.Latency <= 0 {
		return 0
	}
	in.mu.Lock()
	d := time.Duration(in.rng.Int63n(int64(in.cfg.Latency))) + 1
	in.mu.Unlock()
	in.Latencies.Add(1)
	return d
}

// StallFor returns how long the worker should stall (ignoring the
// request context), or 0 for none.
func (in *Injector) StallFor() time.Duration {
	if in == nil || !in.roll(in.cfg.StallP) || in.cfg.Stall <= 0 {
		return 0
	}
	in.Stalls.Add(1)
	return in.cfg.Stall
}

// ShouldPanic reports whether to panic on the worker goroutine now.
func (in *Injector) ShouldPanic() bool {
	if in == nil || !in.roll(in.cfg.PanicP) {
		return false
	}
	in.Panics.Add(1)
	return true
}

// FaultPass picks a detectable buggy pass to splice into a request's
// pipeline, or reports false for none this time.
func (in *Injector) FaultPass() (faultify.Fault, bool) {
	if in == nil || len(in.faults) == 0 || !in.roll(in.cfg.FaultP) {
		return faultify.Fault{}, false
	}
	in.mu.Lock()
	ft := in.faults[in.rng.Intn(len(in.faults))]
	in.mu.Unlock()
	in.Faults.Add(1)
	return ft, true
}

// CorruptRead possibly corrupts a cached program on its way out of the
// cache: one bit of one byte flipped, the way real memory or storage
// rot manifests. The caller (the cache's checksum) is responsible for
// detecting it; the second return reports whether corruption happened.
func (in *Injector) CorruptRead(program string) (string, bool) {
	if in == nil || program == "" || !in.roll(in.cfg.CorruptP) {
		return program, false
	}
	in.mu.Lock()
	pos := in.rng.Intn(len(program))
	bit := byte(1) << uint(in.rng.Intn(8))
	in.mu.Unlock()
	b := []byte(program)
	b[pos] ^= bit
	in.Corruptions.Add(1)
	return string(b), true
}

// Stats snapshots the event counters.
func (in *Injector) Stats() map[string]int64 {
	if in == nil {
		return nil
	}
	return map[string]int64{
		"latencies":   in.Latencies.Load(),
		"stalls":      in.Stalls.Load(),
		"panics":      in.Panics.Load(),
		"faults":      in.Faults.Load(),
		"corruptions": in.Corruptions.Load(),
	}
}

// Parse reads a -chaos flag spec: comma-separated key=value pairs.
//
//	seed=N            PRNG seed (default 1)
//	latency=DUR:P     extra latency up to DUR with probability P
//	stall=DUR:P       worker stall of DUR with probability P
//	panic=P           induced worker panic with probability P
//	fault=P           buggy detectable pass with probability P
//	corrupt=P         cache corruption-on-read with probability P
//
// Example: "seed=7,latency=5ms:0.2,stall=50ms:0.05,panic=0.02,fault=0.1,corrupt=0.2".
func Parse(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	prob := func(s, key string) (float64, error) {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil || p < 0 || p > 1 {
			return 0, fmt.Errorf("chaos: %s wants a probability in [0,1], got %q", key, s)
		}
		return p, nil
	}
	durProb := func(s, key string) (time.Duration, float64, error) {
		d, pStr, ok := strings.Cut(s, ":")
		if !ok {
			return 0, 0, fmt.Errorf("chaos: %s wants DURATION:PROBABILITY, got %q", key, s)
		}
		dur, err := time.ParseDuration(d)
		if err != nil || dur <= 0 {
			return 0, 0, fmt.Errorf("chaos: %s wants a positive duration, got %q", key, d)
		}
		p, err := prob(pStr, key)
		if err != nil {
			return 0, 0, err
		}
		return dur, p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec element %q (want key=value)", part)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("chaos: bad seed %q", val)
			}
		case "latency":
			cfg.Latency, cfg.LatencyP, err = durProb(val, key)
		case "stall":
			cfg.Stall, cfg.StallP, err = durProb(val, key)
		case "panic":
			cfg.PanicP, err = prob(val, key)
		case "fault":
			cfg.FaultP, err = prob(val, key)
		case "corrupt":
			cfg.CorruptP, err = prob(val, key)
		default:
			err = fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}
