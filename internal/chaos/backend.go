package chaos

import (
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// BackendMode is the fault a Backend proxy is currently injecting.
// Where the Injector misbehaves *inside* one server, Backend misbehaves
// *around* a whole server — the failure modes a fleet router must
// survive: a node that is gone, a node that answers slowly, and a node
// reachable but black-holed by the network.
type BackendMode int32

const (
	// BackendHealthy forwards every request untouched.
	BackendHealthy BackendMode = iota
	// BackendKilled drops every connection immediately without a
	// response — the client sees a reset/EOF, exactly like a process
	// that died or a port with nothing listening.
	BackendKilled
	// BackendPartitioned accepts the connection and then never answers:
	// the request hangs until the caller's own deadline fires, then the
	// connection is dropped. This is the network black hole that only a
	// client-side timeout can detect — no error ever comes back.
	BackendPartitioned
	// BackendStalled delays every request by the configured stall before
	// forwarding it — a drowning-but-alive node.
	BackendStalled
	// BackendCut forwards the request but severs the connection after a
	// configured number of response bytes have been written — the
	// mid-stream failure mode of long-lived responses (NDJSON streams): a
	// client that got a valid prefix, then EOF before the trailer.
	BackendCut
)

func (m BackendMode) String() string {
	switch m {
	case BackendHealthy:
		return "healthy"
	case BackendKilled:
		return "killed"
	case BackendPartitioned:
		return "partitioned"
	case BackendStalled:
		return "stalled"
	case BackendCut:
		return "cut"
	}
	return "unknown"
}

// Backend wraps one backend's HTTP handler with switchable, whole-node
// fault injection. The fleet soak flips modes mid-run to kill,
// partition, and revive backends while traffic flows; every path of the
// wrapped server (including its health probes) misbehaves together,
// which is what makes a gateway's breaker see what a real outage looks
// like. Test-only, like the Injector.
type Backend struct {
	next     atomic.Value // http.Handler; swappable for restart simulation
	mode     atomic.Int32
	stall    atomic.Int64 // nanoseconds, for BackendStalled
	cutAfter atomic.Int64 // response bytes allowed through, for BackendCut

	// Event counters for the soak's audit trail.
	Passed      atomic.Int64 // requests forwarded untouched
	Dropped     atomic.Int64 // connections killed without a response
	Blackholed  atomic.Int64 // requests held until the caller gave up
	StalledReqs atomic.Int64 // requests delayed then forwarded
	CutReqs     atomic.Int64 // responses severed mid-body
	Restarts    atomic.Int64 // kill-then-revive cycles completed
}

// NewBackend wraps next in a healthy proxy; flip faults on with SetMode.
// next may be nil — the proxy then drops connections like a killed node
// until SetHandler installs a real server, which lets a fixture allocate
// its listener (and thus its URL) before the server that needs the URL
// exists.
func NewBackend(next http.Handler) *Backend {
	b := &Backend{}
	if next != nil {
		b.next.Store(next)
	}
	return b
}

// SetHandler atomically swaps the wrapped server — the revive half of a
// crash-restart: the "process" behind this node's address is replaced
// while the address (and whatever gateway state points at it) stays.
// Requests already executing finish against the handler they started on.
func (b *Backend) SetHandler(next http.Handler) {
	b.next.Store(next)
}

// handler returns the currently wrapped server, or nil before the first
// SetHandler.
func (b *Backend) handler() http.Handler {
	h, _ := b.next.Load().(http.Handler)
	return h
}

// Restart simulates a crash-restart: the node drops every connection for
// downFor, then revive builds its next life (typically a fresh server
// over the same durable state) and the node comes back healthy. revive
// runs once, off the caller's goroutine, just before the node heals; a
// nil handler from revive leaves the node serving its previous one.
func (b *Backend) Restart(downFor time.Duration, revive func() http.Handler) {
	b.SetMode(BackendKilled)
	time.AfterFunc(downFor, func() {
		if h := revive(); h != nil {
			b.SetHandler(h)
		}
		b.Restarts.Add(1)
		b.SetMode(BackendHealthy)
	})
}

// SetMode switches the injected fault. Safe to call while requests are
// in flight; only requests arriving after the switch observe it.
func (b *Backend) SetMode(m BackendMode) { b.mode.Store(int32(m)) }

// Mode returns the current fault mode.
func (b *Backend) Mode() BackendMode { return BackendMode(b.mode.Load()) }

// SetStall sets the per-request delay used by BackendStalled.
func (b *Backend) SetStall(d time.Duration) { b.stall.Store(int64(d)) }

// SetCutAfter sets how many response bytes BackendCut lets through
// before severing the connection.
func (b *Backend) SetCutAfter(n int64) { b.cutAfter.Store(n) }

func (b *Backend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch b.Mode() {
	case BackendKilled:
		b.Dropped.Add(1)
		// ErrAbortHandler makes the server drop the connection without
		// writing a response: the client observes EOF/connection reset,
		// indistinguishable from a dead process.
		panic(http.ErrAbortHandler)
	case BackendPartitioned:
		b.Blackholed.Add(1)
		// Drain the body first: the HTTP server arms client-disconnect
		// detection (which cancels r.Context) only once the request body
		// has been consumed, so an unread POST body would park this
		// handler forever even after the caller hangs up.
		io.Copy(io.Discard, r.Body)
		// Hold the request open until the caller abandons it; nothing is
		// ever written, so only the caller's deadline can end the wait.
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	case BackendStalled:
		b.StalledReqs.Add(1)
		d := time.Duration(b.stall.Load())
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
		b.forward(w, r)
	case BackendCut:
		b.CutReqs.Add(1)
		limit := b.cutAfter.Load()
		if limit <= 0 {
			limit = 256
		}
		// The wrapped handler writes through a byte-counting writer; once
		// the allowance is spent the writer panics with ErrAbortHandler,
		// which drops the connection mid-body: the client has a valid
		// response prefix and then a hard EOF, exactly what a process
		// dying mid-stream looks like.
		b.forward(&cutWriter{w: w, left: limit}, r)
	default:
		b.Passed.Add(1)
		b.forward(w, r)
	}
}

// cutWriter passes writes through until its byte allowance is spent,
// then kills the connection. It preserves Flusher so streaming handlers
// behave identically up to the cut.
type cutWriter struct {
	w    http.ResponseWriter
	left int64
}

func (c *cutWriter) Header() http.Header { return c.w.Header() }

func (c *cutWriter) WriteHeader(status int) { c.w.WriteHeader(status) }

func (c *cutWriter) Write(p []byte) (int, error) {
	if c.left <= 0 {
		panic(http.ErrAbortHandler)
	}
	if int64(len(p)) > c.left {
		// Sever mid-record: flush the allowed prefix first so the client
		// sees a torn line, the hardest shape to resume from.
		c.w.Write(p[:c.left])
		c.left = 0
		c.Flush()
		panic(http.ErrAbortHandler)
	}
	c.left -= int64(len(p))
	return c.w.Write(p)
}

func (c *cutWriter) Flush() {
	if fl, ok := c.w.(http.Flusher); ok {
		fl.Flush()
	}
}

func (b *Backend) forward(w http.ResponseWriter, r *http.Request) {
	h := b.handler()
	if h == nil {
		// No server behind the proxy yet: indistinguishable from killed.
		b.Dropped.Add(1)
		panic(http.ErrAbortHandler)
	}
	h.ServeHTTP(w, r)
}
