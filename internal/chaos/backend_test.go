package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestBackendModes drives one wrapped handler through every fault mode
// and asserts the client-visible failure shape of each: healthy
// round-trips, killed yields a transport error with no response,
// partitioned hangs until the client's own deadline, stalled delays but
// answers.
func TestBackendModes(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	b := NewBackend(inner)
	ts := httptest.NewServer(b)
	defer ts.Close()

	get := func(timeout time.Duration) (string, error) {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	if body, err := get(time.Second); err != nil || body != "ok" {
		t.Fatalf("healthy proxy: body=%q err=%v", body, err)
	}

	b.SetMode(BackendKilled)
	if _, err := get(time.Second); err == nil {
		t.Fatal("killed backend still answered")
	}
	if b.Dropped.Load() == 0 {
		t.Error("killed backend did not count the drop")
	}

	b.SetMode(BackendPartitioned)
	start := time.Now()
	_, err := get(50 * time.Millisecond)
	if err == nil {
		t.Fatal("partitioned backend still answered")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("partition surfaced as %v, want the caller's deadline", err)
	}
	if since := time.Since(start); since < 50*time.Millisecond {
		t.Errorf("partitioned request failed after %v, before the deadline", since)
	}
	if b.Blackholed.Load() == 0 {
		t.Error("partitioned backend did not count the black hole")
	}

	// A partitioned POST with an unread body is the regression case: the
	// server arms disconnect detection only after the body is consumed,
	// so the proxy must drain it or the handler parks forever and the
	// server can never shut down.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL, strings.NewReader(`{"program":"x"}`))
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("partitioned POST still answered")
	}
	cancel()

	b.SetMode(BackendStalled)
	b.SetStall(30 * time.Millisecond)
	start = time.Now()
	if body, err := get(time.Second); err != nil || body != "ok" {
		t.Fatalf("stalled proxy: body=%q err=%v", body, err)
	}
	if since := time.Since(start); since < 30*time.Millisecond {
		t.Errorf("stalled request answered after %v, before the stall", since)
	}

	b.SetMode(BackendHealthy)
	if body, err := get(time.Second); err != nil || body != "ok" {
		t.Fatalf("revived proxy: body=%q err=%v", body, err)
	}
	if b.Passed.Load() != 2 {
		t.Errorf("passed counter = %d, want 2", b.Passed.Load())
	}
}

// TestBackendRestart: the kill-then-revive fault drops connections for
// the down window, then runs the revive hook exactly once and serves
// from whatever handler it built — the same address, a new "process".
func TestBackendRestart(t *testing.T) {
	gen1 := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "gen1")
	})
	b := NewBackend(gen1)
	ts := httptest.NewServer(b)
	defer ts.Close()

	get := func() (string, error) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), nil
	}

	if body, err := get(); err != nil || body != "gen1" {
		t.Fatalf("before restart: body=%q err=%v", body, err)
	}

	b.Restart(80*time.Millisecond, func() http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "gen2")
		})
	})
	// Down window: the node is gone, not erroring politely.
	if body, err := get(); err == nil {
		t.Fatalf("restarting node answered %q, want a dropped connection", body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if body, err := get(); err == nil {
			if body != "gen2" {
				t.Fatalf("revived node served %q, want the new generation", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node never revived")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := b.Restarts.Load(); got != 1 {
		t.Errorf("Restarts = %d, want 1", got)
	}
	if b.Mode() != BackendHealthy {
		t.Errorf("mode after revive = %v, want healthy", b.Mode())
	}
}

// TestBackendNilHandlerDropsUntilSet: a proxy built before its server
// exists behaves like a killed node, then serves once the handler lands.
func TestBackendNilHandlerDropsUntilSet(t *testing.T) {
	b := NewBackend(nil)
	ts := httptest.NewServer(b)
	defer ts.Close()

	if resp, err := http.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Fatal("handlerless proxy answered, want a dropped connection")
	}
	b.SetHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "late")
	}))
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("after SetHandler: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "late" {
		t.Fatalf("after SetHandler: %q", body)
	}
}

// TestBackendCutSeversMidBody: the cut fault forwards the request, lets
// the configured byte allowance through (flushed, so a streaming client
// really receives it), then drops the connection — the client holds a
// valid response prefix ending in a torn record, and then a hard error
// instead of a trailer.
func TestBackendCutSeversMidBody(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"type":"item","index":0}`+"\n")
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		io.WriteString(w, `{"type":"trailer","done":true}`+"\n")
	})
	b := NewBackend(inner)
	b.SetMode(BackendCut)
	b.SetCutAfter(26) // exactly the first record and its newline
	ts := httptest.NewServer(b)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("cut backend refused the request outright: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("cut stream ended cleanly; want a severed connection after the prefix")
	}
	if got := string(body); got != `{"type":"item","index":0}`+"\n" {
		t.Errorf("prefix = %q, want exactly the allowed bytes", got)
	}
	if b.CutReqs.Load() != 1 {
		t.Errorf("cut counter = %d, want 1", b.CutReqs.Load())
	}

	// A second request with a mid-record allowance tears a line in half —
	// the hardest resume shape: the prefix is not even valid NDJSON.
	b.SetCutAfter(10)
	resp2, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("cut backend refused the request outright: %v", err)
	}
	defer resp2.Body.Close()
	body, err = io.ReadAll(resp2.Body)
	if err == nil {
		t.Fatal("torn stream ended cleanly")
	}
	if got := string(body); got != `{"type":"i` {
		t.Errorf("torn prefix = %q, want the first 10 bytes", got)
	}
}
