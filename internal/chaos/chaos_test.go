package chaos

import (
	"testing"
	"time"

	"lazycm/internal/faultify"
)

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 1})
	for i := 0; i < 1000; i++ {
		if d := in.Delay(); d != 0 {
			t.Fatal("zero config injected latency")
		}
		if d := in.StallFor(); d != 0 {
			t.Fatal("zero config injected a stall")
		}
		if in.ShouldPanic() {
			t.Fatal("zero config induced a panic")
		}
		if _, ok := in.FaultPass(); ok {
			t.Fatal("zero config injected a fault pass")
		}
		if _, did := in.CorruptRead("program"); did {
			t.Fatal("zero config corrupted a read")
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if d := in.Delay(); d != 0 {
		t.Error("nil injector delayed")
	}
	if d := in.StallFor(); d != 0 {
		t.Error("nil injector stalled")
	}
	if in.ShouldPanic() {
		t.Error("nil injector panicked")
	}
	if _, ok := in.FaultPass(); ok {
		t.Error("nil injector injected a fault")
	}
	if p, did := in.CorruptRead("x"); did || p != "x" {
		t.Error("nil injector corrupted")
	}
	if in.Stats() != nil {
		t.Error("nil injector has stats")
	}
}

// TestDeterminism: two injectors with the same seed make the same
// decision sequence — a chaos run is reproducible from its seed.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 42, LatencyP: 0.5, Latency: 10 * time.Millisecond,
		StallP: 0.3, Stall: time.Millisecond, PanicP: 0.2, FaultP: 0.4, CorruptP: 0.5,
	}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		if da, db := a.Delay(), b.Delay(); da != db {
			t.Fatalf("step %d: delays diverge: %v vs %v", i, da, db)
		}
		if sa, sb := a.StallFor(), b.StallFor(); sa != sb {
			t.Fatalf("step %d: stalls diverge", i)
		}
		if pa, pb := a.ShouldPanic(), b.ShouldPanic(); pa != pb {
			t.Fatalf("step %d: panic decisions diverge", i)
		}
		fa, oka := a.FaultPass()
		fb, okb := b.FaultPass()
		if oka != okb || fa.Name != fb.Name {
			t.Fatalf("step %d: fault decisions diverge", i)
		}
		ca, dida := a.CorruptRead("some program text")
		cb, didb := b.CorruptRead("some program text")
		if dida != didb || ca != cb {
			t.Fatalf("step %d: corruption decisions diverge", i)
		}
	}
}

// TestFaultPassesAreAlwaysDetectable: the injector must never pick a
// Semantic fault — those are only caught by the optional verify
// battery, which degraded service levels disable.
func TestFaultPassesAreAlwaysDetectable(t *testing.T) {
	in := New(Config{Seed: 3, FaultP: 1})
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		ft, ok := in.FaultPass()
		if !ok {
			t.Fatal("FaultP=1 did not inject")
		}
		if ft.Class == faultify.Semantic {
			t.Fatalf("injected semantic fault %s: undetectable with verify off", ft.Name)
		}
		seen[ft.Name] = true
	}
	if len(seen) < 2 {
		t.Errorf("fault variety too low: %v", seen)
	}
	if got := in.Faults.Load(); got != 500 {
		t.Errorf("fault counter = %d, want 500", got)
	}
}

func TestCorruptReadFlipsExactlyOneBit(t *testing.T) {
	in := New(Config{Seed: 9, CorruptP: 1})
	const prog = "func f(a) {\ne:\n  ret a\n}\n"
	got, did := in.CorruptRead(prog)
	if !did {
		t.Fatal("CorruptP=1 did not corrupt")
	}
	if got == prog {
		t.Fatal("corruption left the program unchanged")
	}
	if len(got) != len(prog) {
		t.Fatalf("corruption changed length: %d vs %d", len(got), len(prog))
	}
	diff := 0
	for i := range prog {
		if b := prog[i] ^ got[i]; b != 0 {
			diff++
			if b&(b-1) != 0 {
				t.Errorf("byte %d: more than one bit flipped (%08b)", i, b)
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	// Empty input cannot be corrupted.
	if p, did := in.CorruptRead(""); did || p != "" {
		t.Error("empty program was corrupted")
	}
}

func TestDelayBounded(t *testing.T) {
	in := New(Config{Seed: 5, LatencyP: 1, Latency: 3 * time.Millisecond})
	for i := 0; i < 200; i++ {
		d := in.Delay()
		if d <= 0 || d > 3*time.Millisecond {
			t.Fatalf("delay %v out of (0, 3ms]", d)
		}
	}
}

func TestParse(t *testing.T) {
	cfg, err := Parse("seed=7,latency=5ms:0.2,stall=50ms:0.05,panic=0.02,fault=0.1,corrupt=0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, LatencyP: 0.2, Latency: 5 * time.Millisecond,
		StallP: 0.05, Stall: 50 * time.Millisecond,
		PanicP: 0.02, FaultP: 0.1, CorruptP: 0.2,
	}
	if cfg != want {
		t.Errorf("Parse = %+v, want %+v", cfg, want)
	}
	if cfg, err := Parse(""); err != nil || cfg.Seed != 1 {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{
		"nonsense", "panic=2", "panic=-0.1", "latency=5ms", "latency=bogus:0.5",
		"stall=1ms:1.5", "seed=x", "unknown=1", "latency=0s:0.5",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
