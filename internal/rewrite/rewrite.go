// Package rewrite holds the block-rewriting machinery shared by the
// block-level PRE transformations (Morel–Renvoise in package mr and the
// edge-based Lazy Code Motion variant in package lcmblock): locating the
// upward- and downward-exposed computation of each expression in a block,
// and applying delete/save edits.
package rewrite

import (
	"strconv"

	"lazycm/internal/bitvec"
	"lazycm/internal/ir"
	"lazycm/internal/props"
)

// Exposure maps expression numbers to the instruction index of their
// upward- or downward-exposed computation within one block.
type Exposure struct {
	// Up[e] is the index of the first computation of e not preceded by a
	// kill of e in the block.
	Up map[int]int
	// Down[e] is the index of the last computation of e not followed
	// (inclusive of its own definition) by a kill of e in the block.
	Down map[int]int
}

// FindExposure scans block b over universe u.
func FindExposure(b *ir.Block, u *props.Universe) Exposure {
	ex := Exposure{Up: make(map[int]int, 2), Down: make(map[int]int, 2)}
	killed := bitvec.New(u.Size())
	for j, in := range b.Instrs {
		if e, ok := in.Expr(); ok {
			if i, found := u.Index(e); found && !killed.Get(i) {
				if _, seen := ex.Up[i]; !seen {
					ex.Up[i] = j
				}
			}
		}
		u.AddKilledBy(killed, in.Defs())
	}
	killed.ClearAll()
	for j := len(b.Instrs) - 1; j >= 0; j-- {
		in := b.Instrs[j]
		u.AddKilledBy(killed, in.Defs())
		if e, ok := in.Expr(); ok {
			if i, found := u.Index(e); found && !killed.Get(i) {
				if _, seen := ex.Down[i]; !seen {
					ex.Down[i] = j
				}
			}
		}
	}
	return ex
}

// Edits collects the per-block rewrites of a block-level PRE
// transformation.
type Edits struct {
	// Delete[e] requests rewriting the upward-exposed computation of e to
	// a copy from its temporary.
	Delete []int
	// SaveDown[e] requests rewriting the downward-exposed computation of e
	// to "t = e; x = t" if that instruction is not already deleted.
	SaveDown []int
	// Append are expression numbers to compute into their temporaries at
	// the end of the block (before the terminator).
	Append []int
}

// Counts reports how many edits of each kind Apply performed.
type Counts struct {
	Deleted, Saved, Inserted int
}

// Apply performs the edits on b. tempName[e] must name the temporary of
// every touched expression. Edits referring to expressions without an
// exposed occurrence in b are ignored (the caller's data-flow facts
// guarantee existence; this keeps Apply total).
func Apply(b *ir.Block, u *props.Universe, ed Edits, tempName []string) Counts {
	var c Counts
	ex := FindExposure(b, u)

	type edit struct {
		del  bool
		save bool
		expr int
	}
	edits := make(map[int]edit)
	for _, e := range ed.Delete {
		if tempName[e] == "" {
			continue
		}
		if j, ok := ex.Up[e]; ok {
			edits[j] = edit{del: true, expr: e}
		}
	}
	for _, e := range ed.SaveDown {
		if tempName[e] == "" {
			continue
		}
		j, ok := ex.Down[e]
		if !ok {
			continue
		}
		if prev, exists := edits[j]; exists && prev.del {
			// The deleted computation is also the downward-exposed one:
			// the copy "x = t" leaves t current, no save needed.
			continue
		}
		edits[j] = edit{save: true, expr: e}
	}

	var out []ir.Instr
	for j, in := range b.Instrs {
		e, ok := edits[j]
		if !ok {
			out = append(out, in)
			continue
		}
		t := tempName[e.expr]
		switch {
		case e.del:
			out = append(out, ir.NewCopy(in.Dst, ir.Var(t)))
			c.Deleted++
		case e.save:
			ex := u.Expr(e.expr)
			out = append(out, ir.NewBinOp(t, ex.Op, ex.A, ex.B), ir.NewCopy(in.Dst, ir.Var(t)))
			c.Saved++
		}
	}
	for _, e := range ed.Append {
		if tempName[e] == "" {
			continue
		}
		ex := u.Expr(e)
		out = append(out, ir.NewBinOp(tempName[e], ex.Op, ex.A, ex.B))
		c.Inserted++
	}
	b.Instrs = out
	return c
}

// TempNamer assigns deterministic fresh temporary names ("<prefix>0",
// "<prefix>1", …) in expression-number order to the touched expressions,
// returning the per-expression name table and the expression→temp map.
func TempNamer(f *ir.Function, u *props.Universe, touched []bool, prefix string) ([]string, map[ir.Expr]string) {
	used := make(map[string]bool)
	for _, v := range f.Vars() {
		used[v] = true
	}
	names := make([]string, u.Size())
	tempFor := make(map[ir.Expr]string)
	next := 0
	for e := range touched {
		if !touched[e] {
			continue
		}
		for {
			cand := prefix + strconv.Itoa(next)
			next++
			if !used[cand] {
				names[e] = cand
				used[cand] = true
				tempFor[u.Expr(e)] = cand
				break
			}
		}
	}
	return names, tempFor
}
