package rewrite

import (
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/props"
	"lazycm/internal/textir"
)

func parse(t *testing.T, src string) (*ir.Function, *props.Universe) {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f, props.Collect(f)
}

func TestFindExposure(t *testing.T) {
	f, u := parse(t, `
func f(a, b) {
e:
  x = a + b
  a = 0
  y = a + b
  z = a * b
  ret z
}`)
	b := f.Entry()
	ex := FindExposure(b, u)
	add, _ := u.Index(ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")})
	mul, _ := u.Index(ir.Expr{Op: ir.Mul, A: ir.Var("a"), B: ir.Var("b")})
	if got, ok := ex.Up[add]; !ok || got != 0 {
		t.Errorf("Up[a+b] = %d, %v; want 0", got, ok)
	}
	if got, ok := ex.Down[add]; !ok || got != 2 {
		t.Errorf("Down[a+b] = %d, %v; want 2 (after the kill)", got, ok)
	}
	if _, ok := ex.Up[mul]; ok {
		t.Error("a*b computed after the kill of a is not upward exposed")
	}
	if got, ok := ex.Down[mul]; !ok || got != 3 {
		t.Errorf("Down[a*b] = %d, %v", got, ok)
	}
}

func TestFindExposureSelfKill(t *testing.T) {
	f, u := parse(t, `
func f(a, b) {
e:
  a = a + b
  ret a
}`)
	ex := FindExposure(f.Entry(), u)
	if _, ok := ex.Up[0]; !ok {
		t.Error("self-kill must be upward exposed")
	}
	if _, ok := ex.Down[0]; ok {
		t.Error("self-kill must not be downward exposed")
	}
}

func TestApplyDelete(t *testing.T) {
	f, u := parse(t, `
func f(a, b) {
e:
  x = a + b
  ret x
}`)
	names := []string{"t"}
	c := Apply(f.Entry(), u, Edits{Delete: []int{0}}, names)
	if c.Deleted != 1 || c.Saved != 0 || c.Inserted != 0 {
		t.Fatalf("counts = %+v", c)
	}
	if got := f.Entry().Instrs[0].String(); got != "x = t" {
		t.Errorf("deleted instr = %q", got)
	}
}

func TestApplySave(t *testing.T) {
	f, u := parse(t, `
func f(a, b) {
e:
  x = a + b
  ret x
}`)
	names := []string{"t"}
	c := Apply(f.Entry(), u, Edits{SaveDown: []int{0}}, names)
	if c.Saved != 1 {
		t.Fatalf("counts = %+v", c)
	}
	is := f.Entry().Instrs
	if len(is) != 2 || is[0].String() != "t = a + b" || is[1].String() != "x = t" {
		t.Errorf("save shape wrong: %v", is)
	}
}

func TestApplyDeleteWinsOverSave(t *testing.T) {
	// Same instruction both deleted and downward exposed: delete wins, no
	// save emitted.
	f, u := parse(t, `
func f(a, b) {
e:
  x = a + b
  ret x
}`)
	names := []string{"t"}
	c := Apply(f.Entry(), u, Edits{Delete: []int{0}, SaveDown: []int{0}}, names)
	if c.Deleted != 1 || c.Saved != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestApplyAppend(t *testing.T) {
	f, u := parse(t, `
func f(a, b) {
e:
  x = a + b
  ret x
}`)
	names := []string{"t"}
	c := Apply(f.Entry(), u, Edits{Append: []int{0}}, names)
	if c.Inserted != 1 {
		t.Fatalf("counts = %+v", c)
	}
	is := f.Entry().Instrs
	if is[len(is)-1].String() != "t = a + b" {
		t.Errorf("append wrong: %v", is)
	}
}

func TestApplyUnnamedIgnored(t *testing.T) {
	f, u := parse(t, `
func f(a, b) {
e:
  x = a + b
  ret x
}`)
	names := []string{""} // expression not touched
	c := Apply(f.Entry(), u, Edits{Delete: []int{0}, SaveDown: []int{0}, Append: []int{0}}, names)
	if c.Deleted != 0 || c.Saved != 0 || c.Inserted != 0 {
		t.Fatalf("unnamed expression edited: %+v", c)
	}
}

func TestTempNamer(t *testing.T) {
	f, u := parse(t, `
func f(a, b) {
e:
  q0 = a + b
  y = a * b
  z = a - b
  ret z
}`)
	touched := []bool{true, false, true}
	names, tempFor := TempNamer(f, u, touched, "q")
	// q0 is taken by the program: first temp must skip it.
	if names[0] != "q1" {
		t.Errorf("names[0] = %q, want q1", names[0])
	}
	if names[1] != "" {
		t.Errorf("untouched expression named %q", names[1])
	}
	if names[2] != "q2" {
		t.Errorf("names[2] = %q, want q2", names[2])
	}
	if len(tempFor) != 2 {
		t.Errorf("tempFor = %v", tempFor)
	}
	if tempFor[u.Expr(0)] != "q1" {
		t.Errorf("tempFor[0] = %q", tempFor[u.Expr(0)])
	}
}
