// Package lcse implements local (single-block) common-subexpression
// elimination. The Lazy Code Motion paper assumes LCSE has already been
// applied, so that each basic block computes each expression at most
// "interestingly" once; the block-level formulation in package lcmblock
// depends on this normalization, while the statement-level core in package
// lcm does not (its node graph sees every computation individually).
//
// Within a block, a later computation of e reuses the value of an earlier
// one when (a) no operand of e was redefined in between and (b) the
// variable holding the earlier result still holds it. When (a) holds but
// (b) fails, the earlier computation is rewritten to save its value into a
// fresh temporary that the later computation copies from.
package lcse

import (
	"fmt"
	"sort"

	"lazycm/internal/ir"
)

// Result reports what Transform did.
type Result struct {
	// F is the transformed clone; the input is not mutated.
	F *ir.Function
	// Eliminated counts computations rewritten into copies.
	Eliminated int
	// Saved counts fresh temporaries introduced because the original
	// holder variable was overwritten before the reuse.
	Saved int
}

// Transform applies LCSE to a clone of f.
func Transform(f *ir.Function) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("lcse: input invalid: %w", err)
	}
	clone := f.Clone()
	res := &Result{F: clone}

	used := make(map[string]bool)
	for _, v := range clone.Vars() {
		used[v] = true
	}
	nextTemp := 0
	freshTemp := func() string {
		for {
			cand := fmt.Sprintf("s%d", nextTemp)
			nextTemp++
			if !used[cand] {
				used[cand] = true
				return cand
			}
		}
	}

	for _, b := range clone.Blocks {
		rewriteBlock(b, res, freshTemp)
	}
	clone.Recompute()
	if err := clone.Validate(); err != nil {
		return nil, fmt.Errorf("lcse: transformed function invalid: %w", err)
	}
	return res, nil
}

// holder tracks, for one available expression, which instruction computed
// it and which variable currently holds its value ("" if clobbered).
type holder struct {
	idx int // index of the computing instruction in the block
	v   string
}

func rewriteBlock(b *ir.Block, res *Result, freshTemp func() string) {
	avail := make(map[ir.Expr]*holder)
	// saves[idx] is the temp to interpose at instruction idx:
	// "x = e" becomes "t = e; x = t".
	saves := make(map[int]string)

	for j := 0; j < len(b.Instrs); j++ {
		in := b.Instrs[j]
		if e, ok := in.Expr(); ok {
			if h := avail[e]; h != nil {
				// Reuse. If the holding variable was clobbered, retrofit a
				// save at the original computation.
				src := h.v
				if src == "" {
					if t, done := saves[h.idx]; done {
						src = t
					} else {
						src = freshTemp()
						saves[h.idx] = src
						res.Saved++
					}
				}
				b.Instrs[j] = ir.NewCopy(in.Dst, ir.Var(src))
				res.Eliminated++
				// The copy defines in.Dst; fall through to invalidation.
				in = b.Instrs[j]
			} else {
				avail[e] = &holder{idx: j, v: in.Dst}
			}
		}

		// Invalidate on definition: expressions over the defined variable
		// disappear; holders whose variable is overwritten lose it.
		if d := in.Defs(); d != "" {
			for e, h := range avail {
				if e.UsesVar(d) {
					delete(avail, e)
					continue
				}
				if h.v == d && !(h.idx == j) {
					h.v = ""
				}
			}
			// A self-recompute "x = e" where x holds e: the holder above
			// (set this iteration) still points at j with v = x, which is
			// correct — the value is x after this instruction.
		}
	}

	if len(saves) == 0 {
		return
	}
	// Apply saves back to front so indices stay valid.
	idxs := make([]int, 0, len(saves))
	for i := range saves {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for k := len(idxs) - 1; k >= 0; k-- {
		j := idxs[k]
		t := saves[j]
		orig := b.Instrs[j]
		e, _ := orig.Expr()
		b.Instrs[j] = ir.NewCopy(orig.Dst, ir.Var(t))
		b.InsertAt(j, ir.NewBinOp(t, e.Op, e.A, e.B))
	}
}
