package lcse

import (
	"testing"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func transform(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Transform(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimpleReuse(t *testing.T) {
	res := transform(t, `
func f(a, b) {
e:
  x = a + b
  y = a + b
  ret y
}`)
	if res.Eliminated != 1 || res.Saved != 0 {
		t.Fatalf("eliminated=%d saved=%d\n%s", res.Eliminated, res.Saved, res.F)
	}
	if got := res.F.Entry().Instrs[1].String(); got != "y = x" {
		t.Errorf("second computation = %q, want y = x", got)
	}
}

func TestHolderClobbered(t *testing.T) {
	// x is overwritten before the reuse: a save temp must be created.
	res := transform(t, `
func f(a, b) {
e:
  x = a + b
  x = 0
  y = a + b
  ret y
}`)
	if res.Eliminated != 1 || res.Saved != 1 {
		t.Fatalf("eliminated=%d saved=%d\n%s", res.Eliminated, res.Saved, res.F)
	}
	out, _, err := interp.Run(res.F, interp.Options{Args: []int64{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 5 {
		t.Errorf("value = %s\n%s", out, res.F)
	}
	// x must still be 0 semantically: check the original x=0 survived.
	found := false
	for _, in := range res.F.Entry().Instrs {
		if in.String() == "x = 0" {
			found = true
		}
	}
	if !found {
		t.Errorf("x = 0 lost:\n%s", res.F)
	}
}

func TestKillBlocksReuse(t *testing.T) {
	res := transform(t, `
func f(a, b) {
e:
  x = a + b
  a = 1
  y = a + b
  ret y
}`)
	if res.Eliminated != 0 {
		t.Errorf("reuse across operand kill\n%s", res.F)
	}
}

func TestSelfKillNotReused(t *testing.T) {
	res := transform(t, `
func f(a, b) {
e:
  a = a + b
  y = a + b
  ret y
}`)
	if res.Eliminated != 0 {
		t.Errorf("self-kill treated as available\n%s", res.F)
	}
}

func TestChainReuse(t *testing.T) {
	res := transform(t, `
func f(a, b) {
e:
  p = a * b
  q = a * b
  r = a * b
  ret r
}`)
	if res.Eliminated != 2 || res.Saved != 0 {
		t.Fatalf("eliminated=%d saved=%d\n%s", res.Eliminated, res.Saved, res.F)
	}
}

func TestClobberedChainSharesOneTemp(t *testing.T) {
	res := transform(t, `
func f(a, b) {
e:
  p = a * b
  p = 1
  q = a * b
  r = a * b
  ret r
}`)
	if res.Eliminated != 2 || res.Saved != 1 {
		t.Fatalf("eliminated=%d saved=%d\n%s", res.Eliminated, res.Saved, res.F)
	}
	out, _, _ := interp.Run(res.F, interp.Options{Args: []int64{3, 4}})
	if out.Value != 12 {
		t.Errorf("value = %s\n%s", out, res.F)
	}
}

func TestCrossBlockNotTouched(t *testing.T) {
	// LCSE is local: cross-block redundancy stays (PRE's job).
	res := transform(t, `
func f(a, b) {
one:
  x = a + b
  jmp two
two:
  y = a + b
  ret y
}`)
	if res.Eliminated != 0 {
		t.Errorf("LCSE acted across blocks\n%s", res.F)
	}
}

func TestSelfRecomputeHolder(t *testing.T) {
	// x = a+b; x = a+b — the second computes into the same variable; the
	// holder is still x and the rewrite yields x = x (harmless copy).
	res := transform(t, `
func f(a, b) {
e:
  x = a + b
  x = a + b
  ret x
}`)
	if res.Eliminated != 1 {
		t.Fatalf("eliminated=%d\n%s", res.Eliminated, res.F)
	}
	out, _, _ := interp.Run(res.F, interp.Options{Args: []int64{2, 5}})
	if out.Value != 7 {
		t.Errorf("value = %s\n%s", out, res.F)
	}
}

func TestInputNotMutated(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  y = a + b
  ret y
}`)
	before := f.String()
	if _, err := Transform(f); err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("input mutated")
	}
}

func TestRandomProgramsEquivalent(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f := randprog.ForSeed(seed)
		res, err := Transform(f)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for run := 0; run < 4; run++ {
			args := randprog.Args(f, seed*71+int64(run))
			a, ca, err := interp.Run(f, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			b, cb, err := interp.Run(res.F, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			if !a.ObservablyEqual(b) {
				t.Fatalf("seed %d args %v: %s vs %s\n%s\n%s", seed, args, a, b, f, res.F)
			}
			if cb.Total() > ca.Total() {
				t.Fatalf("seed %d: LCSE increased evaluations %d > %d", seed, cb.Total(), ca.Total())
			}
		}
	}
}

func TestInvalidInputRejected(t *testing.T) {
	f := parse(t, `
func f(a) {
e:
  ret a
}`)
	f.Blocks[0].ID = 5
	if _, err := Transform(f); err == nil {
		t.Error("invalid input accepted")
	}
}
