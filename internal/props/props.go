// Package props builds the candidate-expression universe of a function and
// the local predicates the PRE analyses consume: for every block (or, via
// package nodes, every statement) and every expression e,
//
//	ANTLOC — e is locally anticipatable: computed before any operand of e
//	         is modified (upward exposed);
//	COMP   — e is locally available on exit: computed and no operand
//	         modified afterwards (downward exposed);
//	TRANSP — transparent: no statement modifies an operand of e.
//
// The statement v = a ⊕ b with v ∈ {a, b} is the classic corner: it is
// ANTLOC (the operands are read before v is written) but neither COMP nor
// TRANSP.
package props

import (
	"lazycm/internal/bitvec"
	"lazycm/internal/ir"
)

// Universe is the ordered set of candidate expressions of one function.
// Expressions are numbered in first-occurrence order (block order, then
// statement order), so numbering is deterministic.
type Universe struct {
	exprs []ir.Expr
	index map[ir.Expr]int
	// killedBy[v] is the set of expressions with v as an operand.
	killedBy map[string]*bitvec.Vector
	// canon records whether Index canonicalizes commutative operands
	// (see CollectCanonical).
	canon bool
}

// Collect scans f and returns its expression universe.
func Collect(f *ir.Function) *Universe {
	// Presize the index to the instruction count (an upper bound on the
	// expression count) so insertion never rehashes: incremental map growth
	// was the single hottest line of the whole analysis prep.
	u := &Universe{index: make(map[ir.Expr]int, f.NumInstrs())}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			e, ok := in.Expr()
			if !ok {
				continue
			}
			if _, dup := u.index[e]; dup {
				continue
			}
			u.index[e] = len(u.exprs)
			u.exprs = append(u.exprs, e)
		}
	}
	u.buildKills()
	return u
}

// buildKills fills the variable→expressions kill map after exprs are set.
func (u *Universe) buildKills() {
	u.killedBy = make(map[string]*bitvec.Vector)
	var scratch []string
	for i, e := range u.exprs {
		scratch = e.Vars(scratch[:0])
		for _, v := range scratch {
			kv := u.killedBy[v]
			if kv == nil {
				kv = bitvec.New(len(u.exprs))
				u.killedBy[v] = kv
			}
			kv.Set(i)
		}
	}
}

// Size returns the number of candidate expressions.
func (u *Universe) Size() int { return len(u.exprs) }

// Expr returns expression number i.
func (u *Universe) Expr(i int) ir.Expr { return u.exprs[i] }

// Exprs returns all expressions in numbering order. The slice is owned by
// the universe; do not mutate.
func (u *Universe) Exprs() []ir.Expr { return u.exprs }

// Index returns the number of e and whether e is in the universe. In a
// canonical universe (CollectCanonical), e is canonicalized first.
func (u *Universe) Index(e ir.Expr) (int, bool) {
	if u.canon {
		e = Canonicalize(e)
	}
	i, ok := u.index[e]
	return i, ok
}

// KilledBy returns the set of expressions that have variable v as an
// operand, or nil if none (callers must treat nil as the empty set).
func (u *Universe) KilledBy(v string) *bitvec.Vector { return u.killedBy[v] }

// AddKilledBy ors into dst the expressions killed by defining v.
func (u *Universe) AddKilledBy(dst *bitvec.Vector, v string) {
	if v == "" {
		return
	}
	if kv := u.killedBy[v]; kv != nil {
		dst.Or(kv)
	}
}

// BlockLocal holds the block-level local predicates, one row per block ID.
type BlockLocal struct {
	U *Universe
	// Antloc, Comp and Transp are NumBlocks×Size matrices.
	Antloc, Comp, Transp *bitvec.Matrix
}

// ComputeBlockLocal computes ANTLOC/COMP/TRANSP for every block of f over
// universe u.
func ComputeBlockLocal(f *ir.Function, u *Universe) *BlockLocal {
	n := f.NumBlocks()
	w := u.Size()
	bl := &BlockLocal{
		U:      u,
		Antloc: bitvec.NewMatrix(n, w),
		Comp:   bitvec.NewMatrix(n, w),
		Transp: bitvec.NewMatrix(n, w),
	}
	killed := bitvec.New(w)
	for _, b := range f.Blocks {
		// Forward walk: ANTLOC and the block's total kill set.
		killed.ClearAll()
		for _, in := range b.Instrs {
			if e, ok := in.Expr(); ok {
				if i, found := u.Index(e); found && !killed.Get(i) {
					bl.Antloc.Set(b.ID, i)
				}
			}
			u.AddKilledBy(killed, in.Defs())
		}
		// TRANSP = ¬killed.
		tr := bl.Transp.Row(b.ID)
		tr.CopyFrom(killed)
		tr.Not()

		// Backward walk: COMP. A computation is downward exposed if no
		// statement at or after it (including its own definition) kills
		// the expression.
		killed.ClearAll()
		for j := len(b.Instrs) - 1; j >= 0; j-- {
			in := b.Instrs[j]
			u.AddKilledBy(killed, in.Defs())
			if e, ok := in.Expr(); ok {
				if i, found := u.Index(e); found && !killed.Get(i) {
					bl.Comp.Set(b.ID, i)
				}
			}
		}
	}
	return bl
}
