package props

import (
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/textir"
)

func TestCommutative(t *testing.T) {
	want := map[ir.Op]bool{
		ir.Add: true, ir.Mul: true, ir.Eq: true, ir.Ne: true,
		ir.Sub: false, ir.Div: false, ir.Mod: false,
		ir.Lt: false, ir.Le: false, ir.Gt: false, ir.Ge: false,
	}
	for op, w := range want {
		if Commutative(op) != w {
			t.Errorf("Commutative(%s) = %v, want %v", op, !w, w)
		}
	}
}

func TestCanonicalize(t *testing.T) {
	a, b := ir.Var("a"), ir.Var("b")
	cases := []struct {
		in, want ir.Expr
	}{
		{ir.Expr{Op: ir.Add, A: b, B: a}, ir.Expr{Op: ir.Add, A: a, B: b}},
		{ir.Expr{Op: ir.Add, A: a, B: b}, ir.Expr{Op: ir.Add, A: a, B: b}},
		{ir.Expr{Op: ir.Sub, A: b, B: a}, ir.Expr{Op: ir.Sub, A: b, B: a}},
		{ir.Expr{Op: ir.Mul, A: a, B: ir.Const(2)}, ir.Expr{Op: ir.Mul, A: ir.Const(2), B: a}},
		{ir.Expr{Op: ir.Eq, A: ir.Const(5), B: ir.Const(3)}, ir.Expr{Op: ir.Eq, A: ir.Const(3), B: ir.Const(5)}},
		{ir.Expr{Op: ir.Ne, A: ir.Var("z"), B: ir.Var("a")}, ir.Expr{Op: ir.Ne, A: ir.Var("a"), B: ir.Var("z")}},
	}
	for _, c := range cases {
		if got := Canonicalize(c.in); got != c.want {
			t.Errorf("Canonicalize(%s) = %s, want %s", c.in, got, c.want)
		}
	}
	// Idempotent.
	for _, c := range cases {
		if Canonicalize(Canonicalize(c.in)) != Canonicalize(c.in) {
			t.Errorf("Canonicalize not idempotent on %s", c.in)
		}
	}
}

func TestCollectCanonical(t *testing.T) {
	f, err := textir.ParseFunction(`
func f(a, b) {
e:
  x = a + b
  y = b + a
  z = a - b
  w = b - a
  ret w
}`)
	if err != nil {
		t.Fatal(err)
	}
	u := CollectCanonical(f)
	// a+b ≡ b+a merge; a-b and b-a stay distinct.
	if u.Size() != 3 {
		t.Fatalf("Size = %d, want 3", u.Size())
	}
	i1, ok1 := u.Index(ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")})
	i2, ok2 := u.Index(ir.Expr{Op: ir.Add, A: ir.Var("b"), B: ir.Var("a")})
	if !ok1 || !ok2 || i1 != i2 {
		t.Errorf("commuted lookups disagree: %d/%v vs %d/%v", i1, ok1, i2, ok2)
	}
	// The plain universe keeps them apart.
	if Collect(f).Size() != 4 {
		t.Errorf("plain Size = %d, want 4", Collect(f).Size())
	}
	// Kill sets must still cover both operands.
	if kb := u.KilledBy("b"); kb == nil || kb.Count() != 3 {
		t.Errorf("KilledBy(b) = %v", kb)
	}
}

func TestBlockLocalWithCanonicalUniverse(t *testing.T) {
	f, err := textir.ParseFunction(`
func f(a, b) {
e:
  x = b + a
  ret x
}`)
	if err != nil {
		t.Fatal(err)
	}
	u := CollectCanonical(f)
	bl := ComputeBlockLocal(f, u)
	i, ok := u.Index(ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")})
	if !ok {
		t.Fatal("canonical form missing")
	}
	if !bl.Antloc.Get(f.Entry().ID, i) || !bl.Comp.Get(f.Entry().ID, i) {
		t.Error("local predicates missed the commuted computation")
	}
}
