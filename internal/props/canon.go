package props

import "lazycm/internal/ir"

// Commutative reports whether the operator's operands can be exchanged
// without changing the result.
func Commutative(op ir.Op) bool {
	switch op {
	case ir.Add, ir.Mul, ir.Eq, ir.Ne:
		return true
	}
	return false
}

// Canonicalize returns e with the operands of a commutative operator in a
// canonical order (constants before variables; constants by value;
// variables by name), so that a+b and b+a denote the same universe entry.
// Non-commutative operators are returned unchanged.
//
// The paper's model is purely lexical; canonicalization is the extension
// measured by experiment T7 — it exposes strictly more redundancies at no
// cost to safety, since exchanging operands of a commutative operator
// preserves the value.
func Canonicalize(e ir.Expr) ir.Expr {
	if !Commutative(e.Op) {
		return e
	}
	if operandLess(e.B, e.A) {
		e.A, e.B = e.B, e.A
	}
	return e
}

func operandLess(a, b ir.Operand) bool {
	if a.IsConst() != b.IsConst() {
		return a.IsConst()
	}
	if a.IsConst() {
		return a.Value < b.Value
	}
	return a.Name < b.Name
}

// CollectCanonical is Collect with commutative canonicalization: the
// universe contains canonical forms only, and Index canonicalizes its
// argument before lookup.
func CollectCanonical(f *ir.Function) *Universe {
	u := &Universe{index: make(map[ir.Expr]int, f.NumInstrs()), canon: true}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			e, ok := in.Expr()
			if !ok {
				continue
			}
			e = Canonicalize(e)
			if _, dup := u.index[e]; dup {
				continue
			}
			u.index[e] = len(u.exprs)
			u.exprs = append(u.exprs, e)
		}
	}
	u.buildKills()
	return u
}
