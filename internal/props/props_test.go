package props

import (
	"testing"

	"lazycm/internal/ir"
	"lazycm/internal/textir"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCollectOrderAndDedup(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  y = a * b
  z = a + b
  ret z
}`)
	u := Collect(f)
	if u.Size() != 2 {
		t.Fatalf("Size = %d", u.Size())
	}
	if u.Expr(0).String() != "a + b" || u.Expr(1).String() != "a * b" {
		t.Errorf("order wrong: %v, %v", u.Expr(0), u.Expr(1))
	}
	if i, ok := u.Index(ir.Expr{Op: ir.Mul, A: ir.Var("a"), B: ir.Var("b")}); !ok || i != 1 {
		t.Errorf("Index = %d, %v", i, ok)
	}
	if _, ok := u.Index(ir.Expr{Op: ir.Sub, A: ir.Var("a"), B: ir.Var("b")}); ok {
		t.Error("unknown expression found")
	}
	if len(u.Exprs()) != 2 {
		t.Error("Exprs length")
	}
}

func TestSyntacticIdentity(t *testing.T) {
	// a + b and b + a are distinct expressions in the lexical model.
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  y = b + a
  ret y
}`)
	if u := Collect(f); u.Size() != 2 {
		t.Errorf("commutated expressions conflated: size = %d", u.Size())
	}
}

func TestKilledBy(t *testing.T) {
	f := parse(t, `
func f(a, b, c) {
e:
  x = a + b
  y = b * c
  ret y
}`)
	u := Collect(f)
	kb := u.KilledBy("b")
	if kb == nil || kb.Count() != 2 {
		t.Fatalf("KilledBy(b) = %v", kb)
	}
	if u.KilledBy("z") != nil {
		t.Error("KilledBy of unused var should be nil")
	}
	ka := u.KilledBy("a")
	if ka.Count() != 1 || !ka.Get(0) {
		t.Errorf("KilledBy(a) = %v", ka)
	}
	// Constants kill nothing.
	if u.KilledBy("x") != nil {
		t.Error("destination x is not an operand")
	}
}

func TestBlockLocalSimple(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  a = 0
  y = a + b
  ret y
}`)
	u := Collect(f)
	bl := ComputeBlockLocal(f, u)
	// One expression (a+b appears twice, same lexeme).
	if u.Size() != 1 {
		t.Fatalf("Size = %d", u.Size())
	}
	id := f.Entry().ID
	if !bl.Antloc.Get(id, 0) {
		t.Error("first computation is upward exposed: ANTLOC")
	}
	if !bl.Comp.Get(id, 0) {
		t.Error("second computation is downward exposed: COMP")
	}
	if bl.Transp.Get(id, 0) {
		t.Error("a = 0 kills a + b: not TRANSP")
	}
}

func TestBlockLocalKillBeforeUse(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  a = 0
  x = a + b
  ret x
}`)
	u := Collect(f)
	bl := ComputeBlockLocal(f, u)
	id := f.Entry().ID
	if bl.Antloc.Get(id, 0) {
		t.Error("computation after kill is not upward exposed")
	}
	if !bl.Comp.Get(id, 0) {
		t.Error("computation with nothing after is downward exposed")
	}
	if bl.Transp.Get(id, 0) {
		t.Error("block kills a: not TRANSP")
	}
}

func TestSelfKill(t *testing.T) {
	// a = a + b: ANTLOC (reads before writing), not COMP (its own def
	// kills it), not TRANSP.
	f := parse(t, `
func f(a, b) {
e:
  a = a + b
  ret a
}`)
	u := Collect(f)
	bl := ComputeBlockLocal(f, u)
	id := f.Entry().ID
	if !bl.Antloc.Get(id, 0) {
		t.Error("self-kill must be ANTLOC")
	}
	if bl.Comp.Get(id, 0) {
		t.Error("self-kill must not be COMP")
	}
	if bl.Transp.Get(id, 0) {
		t.Error("self-kill must not be TRANSP")
	}
}

func TestTransparentEmptyBlock(t *testing.T) {
	f := parse(t, `
func f(a, b, c) {
e:
  x = a + b
  br c m out
m:
  jmp out
out:
  ret x
}`)
	u := Collect(f)
	bl := ComputeBlockLocal(f, u)
	m := f.BlockByName("m").ID
	if !bl.Transp.Get(m, 0) {
		t.Error("empty block must be transparent")
	}
	if bl.Antloc.Get(m, 0) || bl.Comp.Get(m, 0) {
		t.Error("empty block computes nothing")
	}
}

func TestConstOperandExpr(t *testing.T) {
	f := parse(t, `
func f(a) {
e:
  x = a + 1
  x = a + 1
  ret x
}`)
	u := Collect(f)
	if u.Size() != 1 {
		t.Fatalf("Size = %d", u.Size())
	}
	bl := ComputeBlockLocal(f, u)
	id := f.Entry().ID
	// x is not an operand of a+1, so both exposures hold and block is
	// transparent.
	if !bl.Antloc.Get(id, 0) || !bl.Comp.Get(id, 0) || !bl.Transp.Get(id, 0) {
		t.Error("a+1 predicates wrong")
	}
}

func TestCopyKills(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  b = x
  y = a + b
  ret y
}`)
	u := Collect(f)
	bl := ComputeBlockLocal(f, u)
	id := f.Entry().ID
	if bl.Transp.Get(id, 0) {
		t.Error("copy to operand must kill")
	}
	if !bl.Antloc.Get(id, 0) || !bl.Comp.Get(id, 0) {
		t.Error("exposures around the copy wrong")
	}
}

func TestNoCandidates(t *testing.T) {
	f := parse(t, `
func f(a) {
e:
  x = a
  print x
  ret
}`)
	u := Collect(f)
	if u.Size() != 0 {
		t.Fatalf("Size = %d", u.Size())
	}
	bl := ComputeBlockLocal(f, u)
	if bl.Antloc.Cols() != 0 {
		t.Error("zero-width matrices expected")
	}
}
