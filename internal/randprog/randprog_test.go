package randprog

import (
	"testing"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/props"
)

func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := ForSeed(seed).String()
		b := ForSeed(seed).String()
		if a != b {
			t.Fatalf("seed %d nondeterministic", seed)
		}
	}
	if ForSeed(1).String() == ForSeed(2).String() {
		t.Error("different seeds produced identical programs")
	}
}

func TestAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		f := ForSeed(seed)
		if err := f.Validate(); err != nil {
			t.Fatalf("seed %d invalid: %v\n%s", seed, err, f)
		}
	}
}

func TestAlwaysTerminates(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		f := ForSeed(seed)
		out, _, err := interp.Run(f, interp.Options{Args: Args(f, seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !out.Returned {
			t.Fatalf("seed %d did not terminate in %d steps:\n%s", seed, out.Steps, f)
		}
	}
}

func TestStructuralVariety(t *testing.T) {
	var sawLoop, sawBranch, sawMultiBlock, sawCandidates, sawPrint bool
	for seed := int64(0); seed < 50; seed++ {
		f := ForSeed(seed)
		if f.NumBlocks() > 3 {
			sawMultiBlock = true
		}
		for _, b := range f.Blocks {
			if b.Term.Kind == ir.Branch {
				sawBranch = true
			}
			for _, in := range b.Instrs {
				if in.Kind == ir.Print {
					sawPrint = true
				}
			}
		}
		// Back edge ⇒ loop: any block whose successor has a smaller ID
		// in builder order is a cheap proxy here.
		for _, b := range f.Blocks {
			for i := 0; i < b.NumSuccs(); i++ {
				if b.Succ(i).ID <= b.ID {
					sawLoop = true
				}
			}
		}
		if props.Collect(f).Size() > 0 {
			sawCandidates = true
		}
	}
	if !sawLoop || !sawBranch || !sawMultiBlock || !sawCandidates || !sawPrint {
		t.Errorf("variety missing: loop=%v branch=%v multi=%v candidates=%v print=%v",
			sawLoop, sawBranch, sawMultiBlock, sawCandidates, sawPrint)
	}
}

func TestExpressionReuse(t *testing.T) {
	// The generator must actually produce redundancy candidates: across a
	// batch of programs, at least some expression must appear in more than
	// one statement.
	reused := 0
	for seed := int64(0); seed < 50; seed++ {
		f := ForSeed(seed)
		count := map[ir.Expr]int{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if e, ok := in.Expr(); ok {
					count[e]++
				}
			}
		}
		for _, c := range count {
			if c > 1 {
				reused++
				break
			}
		}
	}
	if reused < 25 {
		t.Errorf("only %d/50 programs reuse an expression; generator too diverse", reused)
	}
}

func TestConfigNormalization(t *testing.T) {
	// Degenerate configs must still produce valid programs.
	cfgs := []Config{
		{Seed: 1},
		{Seed: 2, MaxDepth: 0, MaxItems: 0, MaxStmts: 0, Vars: 0, Params: 9, MaxTrips: 0},
		{Seed: 3, MaxDepth: 6, MaxItems: 4, MaxStmts: 8, Vars: 3, Params: 3, MaxTrips: 2},
	}
	for _, cfg := range cfgs {
		f := Generate(cfg)
		if err := f.Validate(); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
		out, _, err := interp.Run(f, interp.Options{})
		if err != nil || !out.Returned {
			t.Errorf("config %+v: run failed: %v %s", cfg, err, out)
		}
	}
}

func TestArgsDeterministic(t *testing.T) {
	f := ForSeed(7)
	a := Args(f, 42)
	b := Args(f, 42)
	if len(a) != len(f.Params) {
		t.Fatalf("args len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Args nondeterministic")
		}
	}
}

func TestDepthZeroIsStraightLine(t *testing.T) {
	f := Generate(Config{Seed: 5, MaxDepth: 0, MaxItems: 3, MaxStmts: 4, Vars: 4, Params: 2, MaxTrips: 1})
	if f.NumBlocks() != 1 {
		t.Errorf("depth 0 produced %d blocks", f.NumBlocks())
	}
}

func TestParamsArePoolPrefix(t *testing.T) {
	f := ForSeed(11)
	if len(f.Params) != 3 {
		t.Fatalf("params = %v", f.Params)
	}
	for i, p := range f.Params {
		if want := Default(11); p != "v"+string(rune('0'+i)) || want.Params != 3 {
			t.Errorf("param %d = %q", i, p)
		}
	}
}
