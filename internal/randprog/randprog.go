// Package randprog generates random structured programs: the workload
// generator of the property tests and of experiments T1–T5. Programs are
// built by structural recursion (sequences, if/else, top-test and
// bottom-test counted loops), so their CFGs are reducible, every loop
// terminates, and every program passes ir.Validate. A small shared
// variable pool and operator set bias the generator toward expression
// reuse, which is what gives PRE something to do.
//
// Generation is fully determined by Config (including the seed):
// regenerating with the same Config yields the identical program.
package randprog

import (
	"fmt"
	"math/rand"
	"strconv"

	"lazycm/internal/ir"
)

// Config parametrizes generation.
type Config struct {
	// Seed drives all random choices.
	Seed int64
	// MaxDepth bounds structural nesting; 0 means straight-line only.
	MaxDepth int
	// MaxItems bounds the number of structural items per sequence.
	MaxItems int
	// MaxStmts bounds the straight-line statements emitted per run.
	MaxStmts int
	// Vars is the size of the assignable variable pool (minimum 2).
	Vars int
	// Params is how many pool variables double as function parameters.
	Params int
	// MaxTrips bounds loop trip counts (minimum 1).
	MaxTrips int
	// PrintProb is the percent chance (0–100) a statement run ends with a
	// print, keeping programs observable.
	PrintProb int
}

// Default returns the configuration used by the test suite and the
// experiment harness for the given seed.
func Default(seed int64) Config {
	return Config{
		Seed:      seed,
		MaxDepth:  3,
		MaxItems:  3,
		MaxStmts:  4,
		Vars:      6,
		Params:    3,
		MaxTrips:  4,
		PrintProb: 40,
	}
}

func (c Config) normalized() Config {
	if c.MaxItems < 1 {
		c.MaxItems = 1
	}
	if c.MaxStmts < 1 {
		c.MaxStmts = 1
	}
	if c.Vars < 2 {
		c.Vars = 2
	}
	if c.Params < 0 {
		c.Params = 0
	}
	if c.Params > c.Vars {
		c.Params = c.Vars
	}
	if c.MaxTrips < 1 {
		c.MaxTrips = 1
	}
	return c
}

type gen struct {
	cfg   Config
	r     *rand.Rand
	bd    *ir.Builder
	block int      // fresh block counter
	loop  int      // fresh loop-counter counter
	vars  []string // interned pool-variable names, indexed by number
}

// Generate builds a program from cfg. It panics only on internal generator
// bugs (the produced function always validates).
func Generate(cfg Config) *ir.Function {
	cfg = cfg.normalized()
	g := &gen{cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed))}
	params := make([]string, cfg.Params)
	for i := range params {
		params[i] = g.varName(i)
	}
	name := fmt.Sprintf("rand%d", cfg.Seed)
	if cfg.Seed < 0 {
		name = fmt.Sprintf("rand_n%d", -cfg.Seed) // '-' is not a valid identifier character
	}
	g.bd = ir.NewBuilder(name, params...)

	entry := g.fresh()
	g.bd.Block(entry)
	// Initialize the non-parameter pool variables so behaviour does not
	// depend on the interpreter's undefined-read rule.
	for i := cfg.Params; i < cfg.Vars; i++ {
		g.bd.Copy(g.varName(i), ir.Const(int64(g.r.Intn(21)-10)))
	}
	open := g.seq(entry, cfg.MaxDepth)
	g.bd.Block(open)
	g.bd.Print(ir.Var(g.varName(g.r.Intn(cfg.Vars))))
	g.bd.Ret(ir.Var(g.varName(g.r.Intn(cfg.Vars))))

	f, err := g.bd.Finish()
	if err != nil {
		panic(fmt.Sprintf("randprog: generator produced invalid function: %v", err))
	}
	return f
}

// ForSeed generates a program with the default configuration.
func ForSeed(seed int64) *ir.Function { return Generate(Default(seed)) }

func (g *gen) fresh() string {
	g.block++
	return fmt.Sprintf("b%d", g.block)
}

// varName interns pool-variable names: every operand of every generated
// statement asks for one, so formatting a fresh string per reference was
// the generator's hottest allocation.
func (g *gen) varName(i int) string {
	for len(g.vars) <= i {
		g.vars = append(g.vars, "v"+strconv.Itoa(len(g.vars)))
	}
	return g.vars[i]
}

func (g *gen) poolVar() string { return g.varName(g.r.Intn(g.cfg.Vars)) }

// operand yields a pool variable most of the time and a small constant
// occasionally. Small pools and small constants maximize lexical reuse.
func (g *gen) operand() ir.Operand {
	if g.r.Intn(5) == 0 {
		return ir.Const(int64(g.r.Intn(7) - 3))
	}
	return ir.Var(g.poolVar())
}

// op is biased toward a few operators so the same expressions recur.
func (g *gen) op() ir.Op {
	switch g.r.Intn(8) {
	case 0, 1, 2:
		return ir.Add
	case 3, 4:
		return ir.Mul
	case 5:
		return ir.Sub
	case 6:
		return ir.Lt
	default:
		return ir.Mod
	}
}

// stmts appends a run of straight-line statements to the open block.
func (g *gen) stmts(open string) {
	g.bd.Block(open)
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		switch g.r.Intn(10) {
		case 0:
			g.bd.Copy(g.poolVar(), g.operand())
		case 1:
			// Self-kill accumulation: dst is one of its own operands.
			v := g.poolVar()
			g.bd.BinOp(v, g.op(), ir.Var(v), g.operand())
		default:
			g.bd.BinOp(g.poolVar(), g.op(), g.operand(), g.operand())
		}
	}
	if g.r.Intn(100) < g.cfg.PrintProb {
		g.bd.Print(ir.Var(g.poolVar()))
	}
}

// seq emits a sequence of structural items starting in block open and
// returns the open block where control continues.
func (g *gen) seq(open string, depth int) string {
	items := 1 + g.r.Intn(g.cfg.MaxItems)
	for i := 0; i < items; i++ {
		if depth <= 0 {
			g.stmts(open)
			continue
		}
		switch g.r.Intn(5) {
		case 0:
			open = g.ifElse(open, depth-1)
		case 1:
			open = g.ifThen(open, depth-1)
		case 2:
			open = g.whileLoop(open, depth-1)
		case 3:
			open = g.doWhileLoop(open, depth-1)
		default:
			g.stmts(open)
		}
	}
	return open
}

// condVar emits a comparison into the open block and returns its variable.
func (g *gen) condVar(open string) string {
	g.bd.Block(open)
	c := g.poolVar()
	g.bd.BinOp(c, ir.Lt, g.operand(), g.operand())
	return c
}

func (g *gen) ifElse(open string, depth int) string {
	cond := g.condVar(open)
	then, els, join := g.fresh(), g.fresh(), g.fresh()
	g.bd.Block(open).Branch(ir.Var(cond), then, els)
	endThen := g.seq(then, depth)
	g.bd.Block(endThen).Jump(join)
	endElse := g.seq(els, depth)
	g.bd.Block(endElse).Jump(join)
	g.bd.Block(join)
	g.bd.Nop() // keep the join materialized even if nothing follows
	return join
}

// ifThen emits a one-armed conditional, which creates a critical edge from
// the branch to the join — exactly the shape where edge placement matters.
func (g *gen) ifThen(open string, depth int) string {
	cond := g.condVar(open)
	then, join := g.fresh(), g.fresh()
	g.bd.Block(open).Branch(ir.Var(cond), then, join)
	endThen := g.seq(then, depth)
	g.bd.Block(endThen).Jump(join)
	g.bd.Block(join)
	g.bd.Nop()
	return join
}

// whileLoop emits a counted top-test loop.
func (g *gen) whileLoop(open string, depth int) string {
	g.loop++
	cnt := fmt.Sprintf("L%d", g.loop)
	trips := int64(g.r.Intn(g.cfg.MaxTrips) + 1)
	head, body, exit := g.fresh(), g.fresh(), g.fresh()

	g.bd.Block(open).Copy(cnt, ir.Const(0)).Jump(head)
	cond := fmt.Sprintf("c%d", g.loop)
	g.bd.Block(head).BinOp(cond, ir.Lt, ir.Var(cnt), ir.Const(trips)).Branch(ir.Var(cond), body, exit)
	endBody := g.seq(body, depth)
	g.bd.Block(endBody).BinOp(cnt, ir.Add, ir.Var(cnt), ir.Const(1)).Jump(head)
	g.bd.Block(exit)
	g.bd.Nop()
	return exit
}

// doWhileLoop emits a counted bottom-test loop (the shape from which LCM
// hoists invariants).
func (g *gen) doWhileLoop(open string, depth int) string {
	g.loop++
	cnt := fmt.Sprintf("L%d", g.loop)
	trips := int64(g.r.Intn(g.cfg.MaxTrips) + 1)
	body, exit := g.fresh(), g.fresh()

	g.bd.Block(open).Copy(cnt, ir.Const(0)).Jump(body)
	endBody := g.seq(body, depth)
	cond := fmt.Sprintf("c%d", g.loop)
	g.bd.Block(endBody).
		BinOp(cnt, ir.Add, ir.Var(cnt), ir.Const(1)).
		BinOp(cond, ir.Lt, ir.Var(cnt), ir.Const(trips)).
		Branch(ir.Var(cond), body, exit)
	g.bd.Block(exit)
	g.bd.Nop()
	return exit
}

// Args returns deterministic pseudo-random argument values for f derived
// from the given seed.
func Args(f *ir.Function, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	args := make([]int64, len(f.Params))
	for i := range args {
		args[i] = int64(r.Intn(41) - 20)
	}
	return args
}
