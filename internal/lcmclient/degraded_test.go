package lcmclient

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

const degradedBody = `{"error":"journal degraded: disk tier quarantined; retry later or resubmit without ?job=","kind":"journal_degraded","journal_degraded":true,"retry_after_ms":9,"elapsed_ms":0}`

// TestJournalDegradedSurfacesInExhaustedError: a server refusing new
// resumable work because its disk tier is quarantined answers 503 with
// kind "journal_degraded"; when retries run out, the typed error must
// say so — a caller seeing JournalDegraded can fall back to a plain
// (non-?job=) submission instead of blindly retrying.
func TestJournalDegradedSurfacesInExhaustedError(t *testing.T) {
	sc := &script{steps: []step{{status: 503, body: degradedBody, retryAfter: "1"}}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	c := newClient(ts, nil)
	c.MaxAttempts = 2

	_, err := c.Optimize(context.Background(), Request{Program: "p"})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if !ex.JournalDegraded {
		t.Error("ExhaustedError.JournalDegraded = false, want true")
	}
	if ex.RetryAfter != 9*time.Millisecond {
		t.Errorf("ExhaustedError.RetryAfter = %v, want 9ms", ex.RetryAfter)
	}

	// An ordinary overload shed must NOT claim journal degradation.
	sc2 := &script{steps: []step{{status: 503, retryAfter: "1"}}}
	ts2 := httptest.NewServer(sc2.handler(t))
	defer ts2.Close()
	c2 := newClient(ts2, nil)
	c2.MaxAttempts = 2
	_, err = c2.Optimize(context.Background(), Request{Program: "p"})
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if ex.JournalDegraded {
		t.Error("plain overload shed reported JournalDegraded = true")
	}
}

// TestJournalDegradedKindAloneSuffices: an older server (or a proxy
// that strips unknown fields) may send only the kind — the flag must
// still be inferred.
func TestJournalDegradedKindAloneSuffices(t *testing.T) {
	sc := &script{steps: []step{{status: 503,
		body: `{"error":"journal degraded","kind":"journal_degraded","retry_after_ms":5,"elapsed_ms":0}`}}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	c := newClient(ts, nil)
	c.MaxAttempts = 1

	_, err := c.Optimize(context.Background(), Request{Program: "p"})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if !ex.JournalDegraded {
		t.Error("kind journal_degraded alone did not set JournalDegraded")
	}
}

// TestStreamBatchJournalDegraded: the streaming client hits the same
// refusal on POST /optimize/stream?job=1 and must surface it the same
// way once its retries exhaust.
func TestStreamBatchJournalDegraded(t *testing.T) {
	sc := &script{steps: []step{{status: 503, body: degradedBody, retryAfter: "1"}}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	c := newClient(ts, nil)
	c.MaxAttempts = 2

	_, err := c.StreamBatch(context.Background(), Request{Program: "p"}, StreamOptions{Resumable: true})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if !ex.JournalDegraded {
		t.Error("StreamBatch ExhaustedError.JournalDegraded = false, want true")
	}
	if ex.RetryAfter != 9*time.Millisecond {
		t.Errorf("StreamBatch ExhaustedError.RetryAfter = %v, want 9ms", ex.RetryAfter)
	}
}
