package lcmclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// StreamItem is one function's completion record from an NDJSON stream
// (or a GET /jobs snapshot): its module index, name, the HTTP status it
// would have received as a single request, and the standard response.
type StreamItem struct {
	Index  int    `json:"index"`
	Name   string `json:"name,omitempty"`
	Status int    `json:"status"`
	Response
}

// StreamResult is the assembled outcome of one streamed batch.
type StreamResult struct {
	// JobID is the server's resumable job handle ("" for a transient
	// stream); later calls can resume or inspect it.
	JobID     string
	Functions int
	Optimized int
	FellBack  int
	Failed    int
	// Reconnects counts mid-stream connection losses that were cured by
	// resuming the job.
	Reconnects int
	// Items holds every function's record in module order.
	Items []StreamItem
	// Program is the whole-module result: every item's program joined in
	// module order — byte-identical to what a single POST /optimize of
	// the module returns when every item succeeded.
	Program string
}

// StreamOptions tunes one StreamBatch call.
type StreamOptions struct {
	// Resumable asks the server to register the work as a durable job
	// (?job=1): the stream can then be resumed by job ID after a dropped
	// connection or even a server restart.
	Resumable bool
	// OnItem, when non-nil, observes each function's record as it lands
	// (called once per index, duplicates from resumed streams skipped).
	OnItem func(StreamItem)
}

// JobStatus is the GET /jobs/{id} snapshot.
type JobStatus struct {
	ID        string       `json:"id"`
	Done      bool         `json:"done"`
	Running   bool         `json:"running"`
	Functions int          `json:"functions"`
	Completed int          `json:"completed"`
	Optimized int          `json:"optimized"`
	FellBack  int          `json:"fell_back"`
	Failed    int          `json:"failed"`
	Results   []StreamItem `json:"results"`
}

// JobStatus fetches one job's progress snapshot. A 404 is terminal: the
// job was never submitted here or has expired.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+id, nil)
	if err != nil {
		return nil, &TerminalError{Kind: "request", Message: err.Error()}
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, &retryableError{msg: fmt.Sprintf("transport: %v", err)}
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, maxResponseBody))
	if err != nil {
		return nil, &retryableError{msg: fmt.Sprintf("reading response: %v", err)}
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, &TerminalError{Status: hresp.StatusCode, Kind: "job", Message: string(raw)}
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, &retryableError{msg: fmt.Sprintf("malformed job status: %v", err)}
	}
	return &st, nil
}

// StreamBatch submits a module to POST /optimize/stream and consumes
// the NDJSON response incrementally. With Resumable set, a connection
// lost mid-stream (or a stream whose trailer reports the job unfinished
// — a draining or restarted server) is cured by reconnecting to
// GET /jobs/{id}/stream: records already seen are skipped, and the
// final module is byte-identical to an uninterrupted run, because every
// function's result is computed exactly once server-side and replayed
// from its journal and durable cache thereafter.
//
// The retry contract matches Optimize: capped attempts, deterministic
// backoff, server Retry-After hints preferred, the Budget capping the
// whole call. Progress resets the attempt counter — only consecutive
// failures count against it.
func (c *Client) StreamBatch(ctx context.Context, req Request, opts StreamOptions) (*StreamResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	deadline := start.Add(c.budget())
	res := &StreamResult{}
	items := make(map[int]StreamItem)
	var last error
	attempt := 0
	connected := false // a successful POST happened; resume via GET from now on

	for {
		attempt++
		progressed, done, err := c.streamOnce(ctx, req, opts, res, items, connected)
		if done {
			return c.assemble(res, items)
		}
		if err != nil {
			var term *TerminalError
			if errors.As(err, &term) {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			last = err
		} else {
			// The stream ended cleanly but the job is not done (trailer
			// done:false): the server generation was cut short. Reconnect.
			last = &retryableError{msg: "stream ended with job unfinished"}
		}
		if progressed {
			connected = true
			attempt = 0 // progress resets the cap: only consecutive failures count
		}
		if res.JobID == "" && connected {
			// A transient stream cannot be resumed; what was lost is lost.
			return nil, &TerminalError{Kind: "stream", Message: fmt.Sprintf("transient stream interrupted: %v", last)}
		}
		if attempt >= c.maxAttempts() {
			return nil, exhausted(attempt, start, false, last)
		}
		wait := c.backoff(max(attempt, 1), req)
		var re *retryableError
		if errors.As(last, &re) && re.retryAfter > 0 {
			wait = re.retryAfter
		}
		if time.Now().Add(wait).After(deadline) {
			return nil, exhausted(attempt, start, true, last)
		}
		if err := c.doSleep(ctx, wait); err != nil {
			return nil, err
		}
	}
}

// streamOnce opens one stream (initial POST, or GET resume once a job
// ID is known) and consumes records until the trailer or a failure.
// It reports whether any new item landed and whether the job finished.
func (c *Client) streamOnce(ctx context.Context, req Request, opts StreamOptions, res *StreamResult, items map[int]StreamItem, resume bool) (progressed, done bool, err error) {
	var hreq *http.Request
	switch {
	case resume && res.JobID != "":
		res.Reconnects++
		hreq, err = http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/jobs/"+res.JobID+"/stream", nil)
	default:
		path := "/optimize/stream"
		if opts.Resumable {
			path += "?job=1"
		}
		body, merr := json.Marshal(req)
		if merr != nil {
			return false, false, &TerminalError{Kind: "encode", Message: merr.Error()}
		}
		hreq, err = http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
		if hreq != nil {
			hreq.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return false, false, &TerminalError{Kind: "request", Message: err.Error()}
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return false, false, &retryableError{msg: fmt.Sprintf("transport: %v", err)}
	}
	defer hresp.Body.Close()

	if hresp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(hresp.Body, maxResponseBody))
		var out Response
		decodeErr := json.Unmarshal(raw, &out)
		out.Status = hresp.StatusCode
		switch hresp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return false, false, &retryableError{
				msg:             fmt.Sprintf("server %d (%s): %s", hresp.StatusCode, out.Kind, out.Error),
				status:          hresp.StatusCode,
				retryAfter:      retryAfterOf(&out, hresp.Header, decodeErr == nil),
				degradeLevel:    out.DegradeLevel,
				journalDegraded: out.JournalDegraded || out.Kind == "journal_degraded",
			}
		case http.StatusNotFound:
			return false, false, &TerminalError{
				Status: hresp.StatusCode, Kind: "job",
				Message: "job unknown or expired on the server; resubmit the module",
			}
		default:
			if hresp.StatusCode >= 500 {
				return false, false, &retryableError{
					msg: fmt.Sprintf("server %d: %s", hresp.StatusCode, messageOf(&out, raw)), status: hresp.StatusCode,
				}
			}
			return false, false, &TerminalError{
				Status: hresp.StatusCode, Kind: kindOf(&out, "rejected"), Message: messageOf(&out, raw),
			}
		}
	}

	r := bufio.NewReader(hresp.Body)
	for {
		line, rerr := r.ReadBytes('\n')
		line = bytes.TrimSpace(line)
		if len(line) > 0 {
			fin, perr := c.consumeRecord(line, opts, res, items, &progressed)
			if perr != nil {
				return progressed, false, perr
			}
			if fin {
				return progressed, true, nil
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				// EOF before the trailer: cleanly closed but unfinished —
				// the caller decides between resume and giving up.
				return progressed, false, nil
			}
			return progressed, false, &retryableError{msg: fmt.Sprintf("stream read: %v", rerr)}
		}
	}
}

// consumeRecord dispatches one NDJSON line. It reports whether the
// record was a done trailer.
func (c *Client) consumeRecord(line []byte, opts StreamOptions, res *StreamResult, items map[int]StreamItem, progressed *bool) (bool, error) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return false, &retryableError{msg: fmt.Sprintf("malformed stream record: %v", err)}
	}
	switch probe.Type {
	case "job":
		var m struct {
			ID        string `json:"id"`
			Functions int    `json:"functions"`
		}
		if err := json.Unmarshal(line, &m); err != nil {
			return false, &retryableError{msg: fmt.Sprintf("malformed job record: %v", err)}
		}
		if m.ID != "" {
			res.JobID = m.ID
		}
		res.Functions = m.Functions
	case "item":
		var it StreamItem
		if err := json.Unmarshal(line, &it); err != nil {
			return false, &retryableError{msg: fmt.Sprintf("malformed item record: %v", err)}
		}
		if _, dup := items[it.Index]; !dup {
			// Records already seen on a previous connection replay on
			// resume; indexes dedupe them.
			items[it.Index] = it
			*progressed = true
			if opts.OnItem != nil {
				opts.OnItem(it)
			}
		}
	case "trailer":
		var tr struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &tr); err != nil {
			return false, &retryableError{msg: fmt.Sprintf("malformed trailer: %v", err)}
		}
		return tr.Done, nil
	case "heartbeat":
		// Keep-alive only.
	}
	return false, nil
}

// assemble builds the final result once the job is done: items sorted
// into module order, aggregates recounted, the module program joined.
func (c *Client) assemble(res *StreamResult, items map[int]StreamItem) (*StreamResult, error) {
	if res.Functions == 0 {
		res.Functions = len(items)
	}
	if len(items) != res.Functions {
		return nil, &TerminalError{Kind: "stream", Message: fmt.Sprintf(
			"job done with %d of %d items delivered (results may have expired server-side)", len(items), res.Functions)}
	}
	res.Items = make([]StreamItem, 0, len(items))
	for _, it := range items {
		res.Items = append(res.Items, it)
	}
	sort.Slice(res.Items, func(a, b int) bool { return res.Items[a].Index < res.Items[b].Index })
	parts := make([]string, 0, len(res.Items))
	for _, it := range res.Items {
		parts = append(parts, it.Program)
		switch {
		case it.Status == http.StatusOK && !it.FellBack && !it.Canceled:
			res.Optimized++
		case it.Status == http.StatusOK:
			res.FellBack++
		default:
			res.Failed++
		}
	}
	res.Program = strings.Join(parts, "\n")
	return res, nil
}
