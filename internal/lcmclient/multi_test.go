package lcmclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/fleet"
)

// newMulti wires a MultiClient to scripted endpoint servers with waits
// recorded instead of slept.
func newMulti(t *testing.T, cfg *MultiClient, handlers ...http.Handler) (*MultiClient, []*httptest.Server) {
	t.Helper()
	servers := make([]*httptest.Server, len(handlers))
	for i, h := range handlers {
		servers[i] = httptest.NewServer(h)
		t.Cleanup(servers[i].Close)
		cfg.Endpoints = append(cfg.Endpoints, servers[i].URL)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 6
	}
	if cfg.Budget == 0 {
		cfg.Budget = time.Minute
	}
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	}
	return cfg, servers
}

// programOwnedBy finds a program whose consistent-hash owner is the
// given endpoint, so tests control which replica is primary.
func programOwnedBy(t *testing.T, m *MultiClient, want string) string {
	t.Helper()
	m.init()
	for i := 0; i < 512; i++ {
		program := "func p" + string(rune('a'+i%26)) + string(rune('a'+i/26)) + "(x) {\ne:\n  ret x\n}\n"
		key := fleet.KeyOf("/optimize", program, "")
		if m.ring.Owner(key) == want {
			return program
		}
	}
	t.Fatalf("no program hashed to %s", want)
	return ""
}

func okHandler(program string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"program":` + jsonString(program) + `,"functions":1,"applied":["lcm"],"elapsed_ms":1}`))
	})
}

func jsonString(s string) string {
	out := `"`
	for _, r := range s {
		switch r {
		case '"':
			out += `\"`
		case '\\':
			out += `\\`
		case '\n':
			out += `\n`
		default:
			out += string(r)
		}
	}
	return out + `"`
}

// TestMultiAffinity: while the owner is healthy, every replay of the
// same program goes to it and only it.
func TestMultiAffinity(t *testing.T) {
	var hits [3]atomic.Int64
	handlers := make([]http.Handler, 3)
	for i := range handlers {
		idx := i
		inner := okHandler("func f(a) {\ne:\n  ret a\n}\n")
		handlers[i] = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[idx].Add(1)
			inner.ServeHTTP(w, r)
		})
	}
	m, servers := newMulti(t, &MultiClient{}, handlers...)
	program := programOwnedBy(t, m, servers[1].URL)

	for i := 0; i < 5; i++ {
		if _, err := m.Optimize(context.Background(), Request{Program: program}); err != nil {
			t.Fatal(err)
		}
	}
	if got := hits[1].Load(); got != 5 {
		t.Errorf("owner served %d of 5 requests", got)
	}
	if hits[0].Load()+hits[2].Load() != 0 {
		t.Errorf("non-owners served traffic: %d, %d", hits[0].Load(), hits[2].Load())
	}
}

// TestMultiFailoverAndBreakerFreeze: a dead primary fails over to the
// next replica within one call; once its breaker opens, later calls
// stop hitting its wire entirely until the cooldown.
func TestMultiFailoverAndBreakerFreeze(t *testing.T) {
	var deadHits atomic.Int64
	dead := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadHits.Add(1)
		hj, _ := w.(http.Hijacker)
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	})
	live := okHandler("func f(a) {\ne:\n  ret a\n}\n")
	m, servers := newMulti(t, &MultiClient{
		Breaker: fleet.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute},
	}, dead, live)
	program := programOwnedBy(t, m, servers[0].URL)

	// Call 1: attempt 1 dies on the primary, attempt 2 succeeds on the
	// replica — failover inside a single Optimize call.
	resp, err := m.Optimize(context.Background(), Request{Program: program})
	if err != nil {
		t.Fatalf("call 1: %v", err)
	}
	if resp.Program == "" {
		t.Fatal("call 1 returned no program")
	}
	if got := deadHits.Load(); got != 1 {
		t.Fatalf("call 1 hit the dead endpoint %d times, want 1", got)
	}

	// Call 2: second failure opens the breaker.
	if _, err := m.Optimize(context.Background(), Request{Program: program}); err != nil {
		t.Fatalf("call 2: %v", err)
	}
	if got := m.BreakerState(servers[0].URL); got != fleet.BreakerOpen {
		t.Fatalf("breaker after 2 failures = %v, want open", got)
	}
	frozen := deadHits.Load()

	// Calls 3..6: the open breaker keeps the dead endpoint off the wire.
	for i := 0; i < 4; i++ {
		if _, err := m.Optimize(context.Background(), Request{Program: program}); err != nil {
			t.Fatalf("call %d: %v", 3+i, err)
		}
	}
	if got := deadHits.Load(); got != frozen {
		t.Errorf("open breaker leaked wire attempts: %d -> %d", frozen, got)
	}
}

// TestMultiBreakerRecovery: after the cooldown, the next real request
// is routed at the tripped endpoint as its half-open probe; success
// closes the breaker.
func TestMultiBreakerRecovery(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			hj, _ := w.(http.Hijacker)
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		okHandler("func f(a) {\ne:\n  ret a\n}\n").ServeHTTP(w, r)
	})
	live := okHandler("func f(a) {\ne:\n  ret a\n}\n")
	m, servers := newMulti(t, &MultiClient{
		Breaker: fleet.BreakerConfig{FailureThreshold: 1, Cooldown: 20 * time.Millisecond, HalfOpenProbes: 1},
	}, flaky, live)
	program := programOwnedBy(t, m, servers[0].URL)

	if _, err := m.Optimize(context.Background(), Request{Program: program}); err != nil {
		t.Fatal(err)
	}
	if got := m.BreakerState(servers[0].URL); got != fleet.BreakerOpen {
		t.Fatalf("breaker = %v, want open", got)
	}

	fail.Store(false)
	time.Sleep(30 * time.Millisecond) // past the cooldown
	if _, err := m.Optimize(context.Background(), Request{Program: program}); err != nil {
		t.Fatal(err)
	}
	if got := m.BreakerState(servers[0].URL); got != fleet.BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
}

// TestMultiHedge: a primary that overruns the soft deadline gets raced
// by the next replica, and the faster answer wins.
func TestMultiHedge(t *testing.T) {
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		okHandler("func slow(a) {\ne:\n  ret a\n}\n").ServeHTTP(w, r)
	})
	fast := okHandler("func fast(a) {\ne:\n  ret a\n}\n")
	m, servers := newMulti(t, &MultiClient{HedgeAfter: 20 * time.Millisecond}, slow, fast)
	defer close(release)
	program := programOwnedBy(t, m, servers[0].URL)

	resp, err := m.Optimize(context.Background(), Request{Program: program})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Program != "func fast(a) {\ne:\n  ret a\n}\n" {
		t.Errorf("hedge did not win: got %q", resp.Program)
	}
	if m.Hedges() != 1 {
		t.Errorf("hedges = %d, want 1", m.Hedges())
	}
}

// TestMultiTerminalStopsRouting: a terminal classification from any
// replica ends the call — no retry against other endpoints.
func TestMultiTerminalStopsRouting(t *testing.T) {
	var hits [2]atomic.Int64
	handlers := make([]http.Handler, 2)
	for i := range handlers {
		idx := i
		handlers[i] = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[idx].Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":"no good","kind":"parse","degrade_level":1,"elapsed_ms":0}`))
		})
	}
	m, _ := newMulti(t, &MultiClient{}, handlers...)
	_, err := m.Optimize(context.Background(), Request{Program: "x"})
	var term *TerminalError
	if !errors.As(err, &term) {
		t.Fatalf("got %v, want TerminalError", err)
	}
	if term.Status != http.StatusBadRequest || term.DegradeLevel != 1 {
		t.Errorf("terminal error dropped fields: %+v", term)
	}
	if hits[0].Load()+hits[1].Load() != 1 {
		t.Errorf("terminal failure was retried: %d total hits", hits[0].Load()+hits[1].Load())
	}
}
