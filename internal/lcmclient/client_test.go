package lcmclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// script is a scripted flaky server: each incoming request pops the
// next step and plays it. The last step repeats once the script runs
// dry, so "always 429" scenarios are one step long.
type script struct {
	mu    sync.Mutex
	steps []step
	seen  int
}

type step struct {
	status     int
	body       string // raw body; "" means a minimal JSON body for the status
	retryAfter string // Retry-After header value; "" omits the header
	hangup     bool   // close the connection without a response
}

func (sc *script) handler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sc.mu.Lock()
		st := sc.steps[min(sc.seen, len(sc.steps)-1)]
		sc.seen++
		sc.mu.Unlock()
		if st.hangup {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close() // connection reset from the client's perspective
			return
		}
		if st.retryAfter != "" {
			w.Header().Set("Retry-After", st.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(st.status)
		body := st.body
		if body == "" {
			body = `{"error":"scripted","kind":"overload","elapsed_ms":0}`
		}
		w.Write([]byte(body))
	}
}

func (sc *script) requests() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.seen
}

// newClient wires a client to the scripted server with waits recorded
// instead of slept, so tests assert the retry contract without wall
// time.
func newClient(ts *httptest.Server, waits *[]time.Duration) *Client {
	return &Client{
		BaseURL:     ts.URL,
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		Budget:      time.Minute,
		sleep: func(ctx context.Context, d time.Duration) error {
			if waits != nil {
				*waits = append(*waits, d)
			}
			return ctx.Err()
		},
	}
}

const okBody = `{"program":"func f(a) {\ne:\n  ret a\n}\n","functions":1,"applied":["lcm"],"elapsed_ms":1}`

func TestRetriesThroughOverloadToSuccess(t *testing.T) {
	sc := &script{steps: []step{
		{status: 429, retryAfter: "1"},
		{status: 503, retryAfter: "1"},
		{status: 200, body: okBody},
	}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	var waits []time.Duration
	resp, err := newClient(ts, &waits).Optimize(context.Background(), Request{Program: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Program == "" || resp.Status != 200 {
		t.Errorf("bad response: %+v", resp)
	}
	if sc.requests() != 3 {
		t.Errorf("server saw %d attempts, want 3", sc.requests())
	}
	if len(waits) != 2 {
		t.Fatalf("client waited %d times, want 2", len(waits))
	}
	// The header said 1s; both waits honor it exactly.
	for i, w := range waits {
		if w != time.Second {
			t.Errorf("wait %d = %v, want 1s (from Retry-After header)", i, w)
		}
	}
}

func TestHonorsBodyRetryAfterMS(t *testing.T) {
	sc := &script{steps: []step{
		{status: 429, retryAfter: "7", body: `{"kind":"overload","retry_after_ms":137,"elapsed_ms":0}`},
		{status: 200, body: okBody},
	}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	var waits []time.Duration
	if _, err := newClient(ts, &waits).Optimize(context.Background(), Request{Program: "p"}); err != nil {
		t.Fatal(err)
	}
	// The millisecond-precise body field wins over the coarse header.
	if len(waits) != 1 || waits[0] != 137*time.Millisecond {
		t.Errorf("waits = %v, want [137ms]", waits)
	}
}

func TestBackoffWhenRetryAfterOmitted(t *testing.T) {
	sc := &script{steps: []step{
		{status: 503}, // no Retry-After header, body has no retry_after_ms
		{status: 503},
		{status: 200, body: okBody},
	}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	var waits []time.Duration
	c := newClient(ts, &waits)
	if _, err := c.Optimize(context.Background(), Request{Program: "p"}); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 2 {
		t.Fatalf("waits = %v, want 2 entries", waits)
	}
	// Capped exponential with jitter in [0.5, 1.5): attempt 1 waits in
	// [5ms, 15ms), attempt 2 in [10ms, 30ms) — and deterministically so.
	if waits[0] < 5*time.Millisecond || waits[0] >= 15*time.Millisecond {
		t.Errorf("first backoff %v outside [5ms, 15ms)", waits[0])
	}
	if waits[1] < 10*time.Millisecond || waits[1] >= 30*time.Millisecond {
		t.Errorf("second backoff %v outside [10ms, 30ms)", waits[1])
	}
	if got := c.backoff(1, Request{Program: "p"}); got != waits[0] {
		t.Errorf("backoff not deterministic: %v vs %v", got, waits[0])
	}
}

func TestMalformedBodyRetries(t *testing.T) {
	sc := &script{steps: []step{
		{status: 200, body: `{"program": "truncat`}, // garbled 200
		{status: 200, body: okBody},
	}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	resp, err := newClient(ts, nil).Optimize(context.Background(), Request{Program: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Program == "" {
		t.Errorf("retry after malformed body did not deliver: %+v", resp)
	}
	if sc.requests() != 2 {
		t.Errorf("server saw %d attempts, want 2", sc.requests())
	}
}

func TestConnectionResetRetries(t *testing.T) {
	sc := &script{steps: []step{
		{hangup: true},
		{status: 200, body: okBody},
	}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	resp, err := newClient(ts, nil).Optimize(context.Background(), Request{Program: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Program == "" || sc.requests() != 2 {
		t.Errorf("reset not retried: %d attempts, %+v", sc.requests(), resp)
	}
}

func TestTerminalErrorsDoNotRetry(t *testing.T) {
	cases := []struct {
		name     string
		st       step
		wantKind string
	}{
		{"bad program", step{status: 400, body: `{"error":"no functions","kind":"parse","elapsed_ms":0}`}, "parse"},
		{"unknown mode", step{status: 400, body: `{"error":"unknown mode","kind":"mode","elapsed_ms":0}`}, "mode"},
		{"deadline", step{status: 504, body: `{"error":"abandoned","kind":"deadline","canceled":true,"elapsed_ms":5}`}, "deadline"},
		{"not found", step{status: 404, body: `not json`}, "rejected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := &script{steps: []step{tc.st}}
			ts := httptest.NewServer(sc.handler(t))
			defer ts.Close()
			_, err := newClient(ts, nil).Optimize(context.Background(), Request{Program: "p"})
			var term *TerminalError
			if !errors.As(err, &term) {
				t.Fatalf("error %v is not terminal", err)
			}
			if term.Kind != tc.wantKind || term.Status != tc.st.status {
				t.Errorf("terminal = %+v, want kind %q status %d", term, tc.wantKind, tc.st.status)
			}
			if sc.requests() != 1 {
				t.Errorf("terminal failure was retried: %d attempts", sc.requests())
			}
		})
	}
}

// TestTypedErrorsCarryServerHints is the regression gate for the
// error-surfacing contract: when the server says how long to wait and
// how degraded it is, both values must ride the typed errors instead of
// being swallowed in the message string.
func TestTypedErrorsCarryServerHints(t *testing.T) {
	// Persistent shed with a precise hint: the ExhaustedError must carry
	// the last hint and degrade level the server reported.
	sc := &script{steps: []step{
		{status: 429, body: `{"error":"shed","kind":"overload","retry_after_ms":7,"degrade_level":2,"elapsed_ms":0}`},
	}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	c := newClient(ts, nil)
	c.MaxAttempts = 2
	_, err := c.Optimize(context.Background(), Request{Program: "p"})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if ex.RetryAfter != 7*time.Millisecond {
		t.Errorf("ExhaustedError.RetryAfter = %v, want 7ms", ex.RetryAfter)
	}
	if ex.DegradeLevel != 2 {
		t.Errorf("ExhaustedError.DegradeLevel = %d, want 2", ex.DegradeLevel)
	}

	// A terminal rejection from a degraded server: the TerminalError
	// carries the level too.
	sc2 := &script{steps: []step{
		{status: 504, body: `{"error":"abandoned","kind":"deadline","degrade_level":1,"elapsed_ms":3}`},
	}}
	ts2 := httptest.NewServer(sc2.handler(t))
	defer ts2.Close()
	_, err = newClient(ts2, nil).Optimize(context.Background(), Request{Program: "p"})
	var term *TerminalError
	if !errors.As(err, &term) {
		t.Fatalf("error %v is not terminal", err)
	}
	if term.DegradeLevel != 1 {
		t.Errorf("TerminalError.DegradeLevel = %d, want 1", term.DegradeLevel)
	}

	// A transport-level exhaustion has no server hint to carry: the
	// fields stay zero rather than inventing one.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	cDead := &Client{BaseURL: deadURL, MaxAttempts: 2, Budget: time.Minute,
		sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() }}
	_, err = cDead.Optimize(context.Background(), Request{Program: "p"})
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if ex.RetryAfter != 0 || ex.DegradeLevel != 0 {
		t.Errorf("transport exhaustion invented hints: %+v", ex)
	}
}

func TestAttemptCap(t *testing.T) {
	sc := &script{steps: []step{{status: 429, retryAfter: "1"}}} // repeats forever
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	c := newClient(ts, nil)
	c.MaxAttempts = 3
	_, err := c.Optimize(context.Background(), Request{Program: "p"})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if ex.Attempts != 3 || ex.BudgetExceeded {
		t.Errorf("exhausted = %+v, want 3 attempts, not budget", ex)
	}
	if sc.requests() != 3 {
		t.Errorf("server saw %d attempts, want 3", sc.requests())
	}
}

func TestBudgetCapsTotalAttemptTime(t *testing.T) {
	// The server asks for a 10-minute wait; the client's whole budget is
	// 50ms, so it must give up before sleeping, not after.
	sc := &script{steps: []step{{status: 429, body: `{"kind":"overload","retry_after_ms":600000,"elapsed_ms":0}`}}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, MaxAttempts: 10, Budget: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Optimize(context.Background(), Request{Program: "p"})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if !ex.BudgetExceeded || ex.Attempts != 1 {
		t.Errorf("exhausted = %+v, want budget-exceeded after 1 attempt", ex)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("budget-capped call took %v", elapsed)
	}
}

func TestContextCancellationDuringWait(t *testing.T) {
	sc := &script{steps: []step{{status: 429, body: `{"kind":"overload","retry_after_ms":10000,"elapsed_ms":0}`}}}
	ts := httptest.NewServer(sc.handler(t))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, MaxAttempts: 10, Budget: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Optimize(ctx, Request{Program: "p"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation not prompt: %v", elapsed)
	}
}

func TestServerDownIsRetryableThenExhausts(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // nothing listening: every attempt is a transport error
	c := &Client{BaseURL: url, MaxAttempts: 2, BaseBackoff: time.Millisecond, Budget: time.Minute}
	_, err := c.Optimize(context.Background(), Request{Program: "p"})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v is not ExhaustedError", err)
	}
	if ex.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", ex.Attempts)
	}
}

// TestResponseShapeRoundTrips guards the wire contract: the fields the
// server emits are the fields the client parses.
func TestResponseShapeRoundTrips(t *testing.T) {
	raw := `{"program":"x","functions":2,"applied":["lcm"],"fell_back":true,` +
		`"diagnostics":["d"],"error":"e","kind":"k","degrade_level":2,` +
		`"retry_after_ms":42,"elapsed_ms":7}`
	var r Response
	if err := json.Unmarshal([]byte(raw), &r); err != nil {
		t.Fatal(err)
	}
	if r.Program != "x" || r.Functions != 2 || !r.FellBack || r.DegradeLevel != 2 ||
		r.RetryAfterMS != 42 || r.ElapsedMS != 7 || r.Kind != "k" {
		t.Errorf("round trip lost fields: %+v", r)
	}
}
