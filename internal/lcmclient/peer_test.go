package lcmclient

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lazycm/internal/cachestore"
)

func peerKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// TestFetchCacheEntryVerifies: only a wire entry that passes the full
// integrity check for the requested key comes back as a payload; a peer
// answering with garbage, a misfiled entry, or an error status produces
// an error, and an authoritative 404 is ErrCacheMiss.
func TestFetchCacheEntryVerifies(t *testing.T) {
	key := peerKey("the program")
	payload := []byte(`{"program":"func f() { ret }"}`)
	answers := map[string]func(w http.ResponseWriter){
		"/good":     func(w http.ResponseWriter) { w.Write(cachestore.Encode(key, payload)) },
		"/garbage":  func(w http.ResponseWriter) { w.Write([]byte("lcmcache1 nonsense")) },
		"/misfiled": func(w http.ResponseWriter) { w.Write(cachestore.Encode(peerKey("other"), payload)) },
		"/missing":  func(w http.ResponseWriter) { http.Error(w, "no", http.StatusNotFound) },
		"/broken":   func(w http.ResponseWriter) { http.Error(w, "boom", http.StatusInternalServerError) },
	}
	var prefix atomic.Value
	prefix.Store("/good")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		answers[prefix.Load().(string)](w)
	}))
	defer ts.Close()

	got, err := FetchCacheEntry(context.Background(), ts.Client(), ts.URL, key)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("good entry: %q, %v", got, err)
	}

	for _, mode := range []string{"/garbage", "/misfiled", "/broken"} {
		prefix.Store(mode)
		if got, err := FetchCacheEntry(context.Background(), ts.Client(), ts.URL, key); err == nil {
			t.Errorf("%s: accepted as %q", mode, got)
		}
	}
	prefix.Store("/missing")
	if _, err := FetchCacheEntry(context.Background(), ts.Client(), ts.URL, key); !errors.Is(err, ErrCacheMiss) {
		t.Errorf("404 = %v, want ErrCacheMiss", err)
	}
}

// TestFetchCacheEntryRespectsContext: a stalled peer costs exactly the
// caller's deadline, never a hang.
func TestFetchCacheEntryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := FetchCacheEntry(ctx, ts.Client(), ts.URL, peerKey("k")); err == nil {
		t.Fatal("stalled peer produced a payload")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("fetch hung for %v past its deadline", d)
	}
}

// TestFetchCacheEntryRejectsBadKey: a malformed key never becomes a
// request URL.
func TestFetchCacheEntryRejectsBadKey(t *testing.T) {
	var called atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called.Store(true)
	}))
	defer ts.Close()
	if _, err := FetchCacheEntry(context.Background(), ts.Client(), ts.URL, "../../admin"); err == nil {
		t.Error("malformed key accepted")
	}
	if called.Load() {
		t.Error("malformed key reached the wire")
	}
}
