package lcmclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// streamScript is a scripted NDJSON server: each request pops the next
// step (the last repeats) and records "METHOD path" for routing
// assertions. A step's body is written as-is; returning without a done
// trailer is exactly the clean-EOF shape of a cut stream.
type streamScript struct {
	mu    sync.Mutex
	steps []step
	calls []string
}

func (sc *streamScript) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sc.mu.Lock()
		st := sc.steps[min(len(sc.calls), len(sc.steps)-1)]
		sc.calls = append(sc.calls, r.Method+" "+r.URL.Path)
		sc.mu.Unlock()
		if st.retryAfter != "" {
			w.Header().Set("Retry-After", st.retryAfter)
		}
		if st.status != http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.WriteHeader(st.status)
		body := st.body
		if body == "" {
			body = `{"error":"scripted","kind":"overload","elapsed_ms":0}`
		}
		w.Write([]byte(body))
	}
}

func (sc *streamScript) seen() []string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return append([]string(nil), sc.calls...)
}

const (
	metaJob   = `{"type":"job","id":"j-feedfacecafebeef","functions":2}` + "\n"
	metaAnon  = `{"type":"job","functions":2}` + "\n"
	item0     = `{"type":"item","index":0,"name":"f","status":200,"program":"AAA"}` + "\n"
	item1     = `{"type":"item","index":1,"name":"g","status":200,"program":"BBB"}` + "\n"
	beat      = `{"type":"heartbeat","elapsed_ms":5}` + "\n"
	trailerOK = `{"type":"trailer","id":"j-feedfacecafebeef","done":true,"functions":2,"completed":2,"optimized":2}` + "\n"
	trailerNo = `{"type":"trailer","id":"j-feedfacecafebeef","done":false,"functions":2,"completed":1,"optimized":1}` + "\n"
)

func TestStreamBatchHappyPath(t *testing.T) {
	sc := &streamScript{steps: []step{
		{status: 200, body: metaJob + item0 + beat + item1 + trailerOK},
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	var order []int
	res, err := newClient(ts, nil).StreamBatch(context.Background(), Request{Program: "p"}, StreamOptions{
		Resumable: true,
		OnItem:    func(it StreamItem) { order = append(order, it.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobID != "j-feedfacecafebeef" || res.Functions != 2 || res.Optimized != 2 || res.Reconnects != 0 {
		t.Errorf("result %+v", res)
	}
	if res.Program != "AAA\nBBB" {
		t.Errorf("program = %q, want items joined in module order", res.Program)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("OnItem order = %v", order)
	}
	if calls := sc.seen(); len(calls) != 1 || calls[0] != "POST /optimize/stream" {
		t.Errorf("calls = %v", calls)
	}
}

// TestStreamBatchResumesAfterCut: a stream that ends before its trailer
// is cured by resuming the job by ID; replayed records dedupe, and the
// final result is exactly what an uninterrupted stream would have built.
func TestStreamBatchResumesAfterCut(t *testing.T) {
	sc := &streamScript{steps: []step{
		{status: 200, body: metaJob + item0}, // cut: EOF before the trailer
		{status: 200, body: metaJob + item0 + item1 + trailerOK},
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	var waits []time.Duration
	hits := map[int]int{}
	res, err := newClient(ts, &waits).StreamBatch(context.Background(), Request{Program: "p"}, StreamOptions{
		Resumable: true,
		OnItem:    func(it StreamItem) { hits[it.Index]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconnects != 1 || res.Optimized != 2 || res.Program != "AAA\nBBB" {
		t.Errorf("result %+v (program %q)", res, res.Program)
	}
	if hits[0] != 1 || hits[1] != 1 {
		t.Errorf("OnItem hits = %v, want each index exactly once despite the replay", hits)
	}
	calls := sc.seen()
	want := []string{"POST /optimize/stream", "GET /jobs/j-feedfacecafebeef/stream"}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Errorf("calls = %v, want %v", calls, want)
	}
	if len(waits) != 1 {
		t.Errorf("client waited %d times, want 1 (one backoff between generations)", len(waits))
	}
}

// TestStreamBatchResumesOnUnfinishedTrailer: a trailer with done:false
// (a drained or restarted server generation) is a reconnect signal, not
// a completion.
func TestStreamBatchResumesOnUnfinishedTrailer(t *testing.T) {
	sc := &streamScript{steps: []step{
		{status: 200, body: metaJob + item0 + trailerNo},
		{status: 200, body: metaJob + item0 + item1 + trailerOK},
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	res, err := newClient(ts, nil).StreamBatch(context.Background(), Request{Program: "p"}, StreamOptions{Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconnects != 1 || res.Optimized != 2 {
		t.Errorf("result %+v", res)
	}
}

// TestStreamBatchTransientCutIsTerminal: without ?job= there is nothing
// to resume — an interrupted transient stream fails fast and says so.
func TestStreamBatchTransientCutIsTerminal(t *testing.T) {
	sc := &streamScript{steps: []step{
		{status: 200, body: metaAnon + item0}, // no job ID, then EOF
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	_, err := newClient(ts, nil).StreamBatch(context.Background(), Request{Program: "p"}, StreamOptions{})
	var term *TerminalError
	if !errors.As(err, &term) || term.Kind != "stream" {
		t.Fatalf("err = %v, want terminal stream error", err)
	}
	if calls := sc.seen(); len(calls) != 1 {
		t.Errorf("transient interrupt retried: calls = %v", calls)
	}
}

// TestStreamBatchResume404IsTerminal: the server no longer knows the
// job (expired, or a different fleet member) — retrying cannot help,
// the client must resubmit the module.
func TestStreamBatchResume404IsTerminal(t *testing.T) {
	sc := &streamScript{steps: []step{
		{status: 200, body: metaJob + item0}, // cut after progress
		{status: 404, body: `{"error":"no such job","kind":"job"}`},
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	_, err := newClient(ts, nil).StreamBatch(context.Background(), Request{Program: "p"}, StreamOptions{Resumable: true})
	var term *TerminalError
	if !errors.As(err, &term) || term.Status != http.StatusNotFound || term.Kind != "job" {
		t.Fatalf("err = %v, want terminal 404 job error", err)
	}
	if calls := sc.seen(); len(calls) != 2 {
		t.Errorf("404 resume retried: calls = %v", calls)
	}
}

// TestStreamBatchHonorsRetryAfterOnShed: a shed submission (429) obeys
// the server's Retry-After hint before resubmitting, like Optimize.
func TestStreamBatchHonorsRetryAfterOnShed(t *testing.T) {
	sc := &streamScript{steps: []step{
		{status: 429, retryAfter: "1"},
		{status: 200, body: metaJob + item0 + item1 + trailerOK},
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()

	var waits []time.Duration
	res, err := newClient(ts, &waits).StreamBatch(context.Background(), Request{Program: "p"}, StreamOptions{Resumable: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimized != 2 {
		t.Errorf("result %+v", res)
	}
	if len(waits) != 1 || waits[0] != time.Second {
		t.Errorf("waits = %v, want exactly the 1s Retry-After hint", waits)
	}
	calls := sc.seen()
	if len(calls) != 2 || calls[1] != "POST /optimize/stream" {
		t.Errorf("calls = %v, want the resubmission to POST again (nothing to resume yet)", calls)
	}
}

func TestJobStatusSnapshotAndMiss(t *testing.T) {
	sc := &streamScript{steps: []step{
		{status: 200, body: `{"id":"j-1","done":true,"functions":2,"completed":2,"optimized":2,"results":[{"index":0,"status":200,"program":"AAA"},{"index":1,"status":200,"program":"BBB"}]}`},
		{status: 404, body: `{"error":"no such job","kind":"job"}`},
	}}
	ts := httptest.NewServer(sc.handler())
	defer ts.Close()
	c := newClient(ts, nil)

	st, err := c.JobStatus(context.Background(), "j-1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Completed != 2 || len(st.Results) != 2 {
		t.Errorf("snapshot %+v", st)
	}
	_, err = c.JobStatus(context.Background(), "j-gone")
	var term *TerminalError
	if !errors.As(err, &term) || term.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want terminal 404", err)
	}
	calls := sc.seen()
	if len(calls) != 2 || calls[0] != "GET /jobs/j-1" {
		t.Errorf("calls = %v", calls)
	}
}
