package lcmclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lazycm/internal/fleet"
)

// MultiClient talks to a fleet of lcmd endpoints directly, without a
// gateway in front. It carries the client half of the fleet routing
// story: requests prefer their consistent-hash owner (cache affinity),
// a per-endpoint circuit breaker takes dead endpoints out of rotation,
// failed attempts rotate to the next replica, and a hedged second
// attempt fires against another replica when the primary dawdles past
// HedgeAfter. Safe because every endpoint computes byte-identical
// results — whichever replica answers first is the answer.
//
// The zero value plus Endpoints is usable. MultiClient is safe for
// concurrent use after the first call.
type MultiClient struct {
	// Endpoints are the lcmd base URLs. At least one is required.
	Endpoints []string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts caps wire attempts per Optimize call, counted across
	// endpoints (a hedge pair counts as one attempt).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the between-rounds backoff, as in
	// Client.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Budget caps one Optimize call's total wall-clock.
	Budget time.Duration
	// HedgeAfter is the soft deadline after which a second attempt is
	// launched against the next healthy replica while the first is still
	// running; first answer wins. 0 disables hedging.
	HedgeAfter time.Duration
	// Breaker tunes the per-endpoint circuit breakers.
	Breaker fleet.BreakerConfig

	initOnce sync.Once
	ring     *fleet.Ring
	clients  map[string]*Client
	breakers map[string]*fleet.Breaker
	hedges   atomic.Int64

	// sleep is the wait primitive; tests swap it.
	sleep func(context.Context, time.Duration) error
}

func (m *MultiClient) init() {
	m.initOnce.Do(func() {
		m.ring = fleet.NewRing(0)
		m.clients = make(map[string]*Client, len(m.Endpoints))
		m.breakers = make(map[string]*fleet.Breaker, len(m.Endpoints))
		for _, ep := range m.Endpoints {
			if _, dup := m.clients[ep]; dup {
				continue
			}
			m.ring.Add(ep)
			m.clients[ep] = &Client{BaseURL: ep, HTTPClient: m.HTTPClient}
			m.breakers[ep] = fleet.NewBreaker(m.Breaker)
		}
	})
}

// Hedges returns how many hedged second attempts have been launched.
func (m *MultiClient) Hedges() int64 { return m.hedges.Load() }

// BreakerState reports the breaker state for one endpoint (Closed for
// unknown endpoints).
func (m *MultiClient) BreakerState(endpoint string) fleet.BreakerState {
	m.init()
	if b, ok := m.breakers[endpoint]; ok {
		return b.State()
	}
	return fleet.BreakerClosed
}

func (m *MultiClient) maxAttempts() int {
	if m.MaxAttempts > 0 {
		return m.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (m *MultiClient) budget() time.Duration {
	if m.Budget > 0 {
		return m.Budget
	}
	return DefaultBudget
}

func (m *MultiClient) doSleep(ctx context.Context, d time.Duration) error {
	if m.sleep != nil {
		return m.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Optimize submits one program to the fleet, retrying across replicas
// until success, a terminal classification, the attempt cap, the
// budget, or cancellation. Endpoint order is the request's consistent-
// hash placement, so replays of the same program keep hitting the same
// (cache-warm) endpoint while it stays healthy.
func (m *MultiClient) Optimize(ctx context.Context, req Request) (*Response, error) {
	m.init()
	if len(m.clients) == 0 {
		return nil, &TerminalError{Kind: "config", Message: "no endpoints configured"}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	order := m.ring.Pick(fleet.KeyOf("/optimize", req.Program, req.Mode), m.ring.Len())
	start := time.Now()
	deadline := start.Add(m.budget())
	attempts := m.maxAttempts()
	var last error
	for attempt := 1; ; attempt++ {
		resp, err := m.round(ctx, order, req, attempt)
		if err == nil {
			return resp, nil
		}
		var term *TerminalError
		if errors.As(err, &term) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		last = err
		if attempt >= attempts {
			return nil, exhausted(attempt, start, false, last)
		}
		wait := backoffDur(m.BaseBackoff, m.MaxBackoff, attempt, req)
		var re *retryableError
		if errors.As(err, &re) && re.retryAfter > 0 {
			wait = re.retryAfter
		}
		if time.Now().Add(wait).After(deadline) {
			return nil, exhausted(attempt, start, true, last)
		}
		if err := m.doSleep(ctx, wait); err != nil {
			return nil, err
		}
	}
}

// round makes one routed attempt. Open breakers whose cooldown has
// elapsed get first claim — their Allow admits the request as the
// half-open probe, which is how the client discovers recovery without
// dedicated health traffic. Otherwise the attempt number rotates
// through the non-open replicas (attempt 1 is the hash owner, attempt
// 2 the next replica, …), hedged against the following replica when
// the primary overruns the soft deadline.
func (m *MultiClient) round(ctx context.Context, order []string, req Request, attempt int) (*Response, error) {
	for _, ep := range order {
		br := m.breakers[ep]
		if br.State() == fleet.BreakerOpen && br.Allow() {
			// Admitted as the half-open probe; attempt() must not call
			// Allow again or it would refuse its own admission.
			return m.attempt(ctx, ep, req, false)
		}
	}
	var candidates []string
	for _, ep := range order {
		if m.breakers[ep].State() != fleet.BreakerOpen {
			candidates = append(candidates, ep)
		}
	}
	if len(candidates) == 0 {
		return nil, &retryableError{msg: "all endpoint breakers open"}
	}
	primary := candidates[(attempt-1)%len(candidates)]
	if m.HedgeAfter <= 0 || len(candidates) < 2 {
		return m.attempt(ctx, primary, req, true)
	}
	alt := candidates[attempt%len(candidates)]
	return m.hedged(ctx, primary, alt, req)
}

// attempt runs one wire call against one endpoint and feeds its
// breaker. An answered request — success, shed, or terminal — proves
// the endpoint alive; transport failures and 5xx count against it; a
// result that arrives after the caller hung up teaches nothing.
func (m *MultiClient) attempt(ctx context.Context, ep string, req Request, gate bool) (*Response, error) {
	br := m.breakers[ep]
	if gate && !br.Allow() {
		return nil, &retryableError{msg: fmt.Sprintf("endpoint %s: breaker open", ep)}
	}
	resp, err := m.clients[ep].post(ctx, req)
	if ctx.Err() != nil && err != nil {
		// Our own cancellation (or a lost hedge race), not the
		// endpoint's fault: don't teach the breaker anything.
		return nil, &retryableError{msg: fmt.Sprintf("endpoint %s: %v", ep, ctx.Err())}
	}
	switch e := err.(type) {
	case nil:
		br.Record(true)
		return resp, nil
	case *retryableError:
		// A shed (429/503) is an answer from a live endpoint; transport
		// errors (status 0) and 5xx are the outage signals.
		br.Record(e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable)
	case *TerminalError:
		br.Record(true)
	}
	if err != nil {
		err = fmt.Errorf("endpoint %s: %w", ep, err)
	}
	return nil, err
}

// hedged races the primary against a delayed second attempt on alt:
// the primary gets HedgeAfter to itself, then the alt launches and the
// first answer wins. The loser is canceled and its verdict discarded.
func (m *MultiClient) hedged(ctx context.Context, primary, alt string, req Request) (*Response, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		resp *Response
		err  error
	}
	results := make(chan outcome, 2)
	launch := func(ep string) {
		go func() {
			resp, err := m.attempt(hctx, ep, req, true)
			results <- outcome{resp, err}
		}()
	}
	launch(primary)

	timer := time.NewTimer(m.HedgeAfter)
	defer timer.Stop()
	launched := 1
	select {
	case r := <-results:
		if r.err == nil {
			return r.resp, nil
		}
		// Primary failed before the soft deadline: the ordinary retry
		// loop handles rotation; no hedge needed.
		return nil, r.err
	case <-timer.C:
		m.hedges.Add(1)
		launch(alt)
		launched = 2
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	var firstErr error
	for i := 0; i < launched; i++ {
		select {
		case r := <-results:
			if r.err == nil {
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, firstErr
}
