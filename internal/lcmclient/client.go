// Package lcmclient is the hardened HTTP client for the lcmd
// optimization service. It implements the client half of the server's
// load-control contract: capped exponential backoff with deterministic
// jitter, honoring the server's Retry-After hints (millisecond-precise
// from the JSON body, second-precise from the header), a hard budget on
// total attempt time, context cancellation, and typed errors that let
// callers distinguish "this request can never succeed" from "the
// service was too busy for my budget".
package lcmclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Request is the wire shape of POST /optimize.
type Request struct {
	Program   string `json:"program"`
	Mode      string `json:"mode,omitempty"`
	Fuel      int    `json:"fuel,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Verify    bool   `json:"verify,omitempty"`
	Canonical bool   `json:"canonical,omitempty"`
}

// Response is the wire shape of every /optimize outcome, plus the HTTP
// status it arrived with.
type Response struct {
	Program      string   `json:"program,omitempty"`
	Functions    int      `json:"functions,omitempty"`
	Applied      []string `json:"applied,omitempty"`
	FellBack     bool     `json:"fell_back,omitempty"`
	Canceled     bool     `json:"canceled,omitempty"`
	Diagnostics  []string `json:"diagnostics,omitempty"`
	Error        string   `json:"error,omitempty"`
	Kind         string   `json:"kind,omitempty"`
	Quarantined  string   `json:"quarantined,omitempty"`
	DegradeLevel int      `json:"degrade_level,omitempty"`
	RetryAfterMS int64    `json:"retry_after_ms,omitempty"`
	// JournalDegraded marks a refusal caused by the server quarantining
	// its disk tier: new resumable (?job=) submissions are off until the
	// disk probes healthy, while plain submissions still flow.
	JournalDegraded bool  `json:"journal_degraded,omitempty"`
	ElapsedMS       int64 `json:"elapsed_ms"`

	// Status is the HTTP status the response arrived with (not part of
	// the JSON body).
	Status int `json:"-"`
}

// TerminalError is a failure retrying cannot cure: the server
// classified the request itself as unserviceable (bad program, unknown
// mode, deadline the client chose). The zero Kind means the status code
// alone was terminal.
type TerminalError struct {
	Status  int
	Kind    string
	Message string
	// DegradeLevel is the degradation rung the server reported when it
	// rejected the request (0 when the body carried none) — how loaded
	// the service was while saying no.
	DegradeLevel int
	// JournalDegraded reports that the server refused because its disk
	// tier is quarantined (new resumable jobs off) — resubmitting
	// without ?job= may succeed immediately.
	JournalDegraded bool
}

func (e *TerminalError) Error() string {
	return fmt.Sprintf("lcmclient: terminal %d (%s): %s", e.Status, e.Kind, e.Message)
}

// ExhaustedError is a retryable failure that persisted past the
// client's attempt cap or time budget. Last is the final attempt's
// failure.
type ExhaustedError struct {
	Attempts       int
	Elapsed        time.Duration
	BudgetExceeded bool
	Last           error
	// RetryAfter is the server's final wait hint (0 when the last
	// failure carried none): when the service itself thinks capacity
	// returns, for callers scheduling their own retry.
	RetryAfter time.Duration
	// DegradeLevel is the last degradation rung the server reported
	// while refusing (0 when unknown).
	DegradeLevel int
	// JournalDegraded reports that the final refusal was the server
	// quarantining its disk tier (kind "journal_degraded"): resumable
	// submissions are off until its probe re-enables the disk, so
	// callers can fall back to a non-resumable submission instead of
	// blindly retrying ?job=.
	JournalDegraded bool
}

func (e *ExhaustedError) Error() string {
	reason := "attempt cap reached"
	if e.BudgetExceeded {
		reason = "retry budget exhausted"
	}
	return fmt.Sprintf("lcmclient: %s after %d attempt(s) in %v: %v", reason, e.Attempts, e.Elapsed, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// retryableError marks one failed attempt the retry loop may cure.
type retryableError struct {
	msg             string
	status          int           // HTTP status; 0 = transport-level failure
	retryAfter      time.Duration // server hint; 0 = none
	degradeLevel    int           // server degrade level; 0 = unknown/full
	journalDegraded bool          // refusal was the disk-quarantine 503
}

func (e *retryableError) Error() string { return e.msg }

// Defaults for the zero-value Client.
const (
	DefaultMaxAttempts = 4
	DefaultBaseBackoff = 100 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
	DefaultBudget      = 30 * time.Second
	maxResponseBody    = 8 << 20
)

// Client talks to one lcmd server. The zero value plus BaseURL is
// usable; fields tune the retry contract.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8657".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts caps how many times one Optimize call hits the wire.
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff used when
	// the server does not send a Retry-After hint.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Budget caps the total wall-clock of one Optimize call — attempts
	// plus waits. A wait that would overshoot the budget is not taken.
	Budget time.Duration

	// sleep is the wait primitive; tests swap it to observe or skip
	// waits. nil means a real context-aware sleep.
	sleep func(context.Context, time.Duration) error
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (c *Client) budget() time.Duration {
	if c.Budget > 0 {
		return c.Budget
	}
	return DefaultBudget
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) doSleep(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff computes the wait before attempt+1: capped exponential with
// deterministic jitter in [0.5, 1.5), seeded from the request content
// and the attempt number — reproducible for one request, decorrelated
// across requests.
func (c *Client) backoff(attempt int, req Request) time.Duration {
	return backoffDur(c.BaseBackoff, c.MaxBackoff, attempt, req)
}

// backoffDur is the shared backoff schedule for the single- and
// multi-endpoint clients.
func backoffDur(base, maxB time.Duration, attempt int, req Request) time.Duration {
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	if maxB <= 0 {
		maxB = DefaultMaxBackoff
	}
	d := base << uint(attempt-1)
	if d > maxB || d <= 0 { // <= 0 guards shift overflow
		d = maxB
	}
	h := fnv.New64a()
	io.WriteString(h, req.Program)
	io.WriteString(h, "\x00")
	io.WriteString(h, req.Mode)
	fmt.Fprintf(h, "\x00%d", attempt)
	frac := float64(h.Sum64()>>40) / float64(uint64(1)<<24) // [0, 1)
	return time.Duration(float64(d) * (0.5 + frac))
}

// Optimize submits one program and retries retryable failures (429,
// 503, 5xx, network errors, malformed response bodies) until success,
// a terminal classification, the attempt cap, the time budget, or
// context cancellation — whichever comes first.
func (c *Client) Optimize(ctx context.Context, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	deadline := start.Add(c.budget())
	attempts := c.maxAttempts()
	var last error
	for attempt := 1; ; attempt++ {
		resp, err := c.post(ctx, req)
		if err == nil {
			return resp, nil
		}
		var term *TerminalError
		if errors.As(err, &term) {
			return nil, err
		}
		if ctx.Err() != nil {
			// The caller's context died (possibly mid-request); report
			// the cancellation, not the wire noise it caused.
			return nil, ctx.Err()
		}
		last = err
		if attempt >= attempts {
			return nil, exhausted(attempt, start, false, last)
		}
		wait := c.backoff(attempt, req)
		var re *retryableError
		if errors.As(err, &re) && re.retryAfter > 0 {
			// The server said when capacity returns; trust it over the
			// client-side guess.
			wait = re.retryAfter
		}
		if time.Now().Add(wait).After(deadline) {
			return nil, exhausted(attempt, start, true, last)
		}
		if err := c.doSleep(ctx, wait); err != nil {
			return nil, err
		}
	}
}

// exhausted builds the ExhaustedError for a given-up retry loop,
// lifting the server's last hint and degrade level out of the final
// retryable failure so callers see them without unwrapping.
func exhausted(attempts int, start time.Time, budget bool, last error) *ExhaustedError {
	e := &ExhaustedError{Attempts: attempts, Elapsed: time.Since(start), BudgetExceeded: budget, Last: last}
	var re *retryableError
	if errors.As(last, &re) {
		e.RetryAfter = re.retryAfter
		e.DegradeLevel = re.degradeLevel
		e.JournalDegraded = re.journalDegraded
	}
	return e
}

// post runs one wire attempt and classifies its outcome.
func (c *Client) post(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &TerminalError{Kind: "encode", Message: err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/optimize", bytes.NewReader(body))
	if err != nil {
		return nil, &TerminalError{Kind: "request", Message: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		// Connection refused, reset, timeout — the transport layer is
		// exactly what overload makes flaky, so it is always retryable.
		return nil, &retryableError{msg: fmt.Sprintf("transport: %v", err)}
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, maxResponseBody))
	if err != nil {
		return nil, &retryableError{msg: fmt.Sprintf("reading response: %v", err)}
	}
	var out Response
	decodeErr := json.Unmarshal(raw, &out)
	out.Status = hresp.StatusCode

	switch {
	case hresp.StatusCode == http.StatusOK:
		if decodeErr != nil {
			// A 200 with a body we cannot parse is indistinguishable
			// from a truncated or garbled reply: retry, never trust it.
			return nil, &retryableError{msg: fmt.Sprintf("malformed 200 body: %v", decodeErr)}
		}
		return &out, nil
	case hresp.StatusCode == http.StatusTooManyRequests,
		hresp.StatusCode == http.StatusServiceUnavailable:
		return nil, &retryableError{
			msg:             fmt.Sprintf("server %d (%s): %s", hresp.StatusCode, out.Kind, out.Error),
			status:          hresp.StatusCode,
			retryAfter:      retryAfterOf(&out, hresp.Header, decodeErr == nil),
			degradeLevel:    out.DegradeLevel,
			journalDegraded: out.JournalDegraded || out.Kind == "journal_degraded",
		}
	case hresp.StatusCode == http.StatusGatewayTimeout:
		// The request's own deadline expired server-side; retrying the
		// same deadline re-runs the same failure.
		return nil, &TerminalError{
			Status: hresp.StatusCode, Kind: kindOf(&out, "deadline"),
			Message: messageOf(&out, raw), DegradeLevel: out.DegradeLevel,
		}
	case hresp.StatusCode >= 500:
		// 500s cover contained panics and infrastructure hiccups; both
		// can be transient, and the attempt cap bounds the optimism.
		return nil, &retryableError{
			msg:          fmt.Sprintf("server %d (%s): %s", hresp.StatusCode, out.Kind, messageOf(&out, raw)),
			status:       hresp.StatusCode,
			degradeLevel: out.DegradeLevel,
		}
	default:
		// 4xx: the request itself is unserviceable.
		return nil, &TerminalError{
			Status: hresp.StatusCode, Kind: kindOf(&out, "rejected"),
			Message: messageOf(&out, raw), DegradeLevel: out.DegradeLevel,
			JournalDegraded: out.JournalDegraded,
		}
	}
}

func kindOf(out *Response, fallback string) string {
	if out.Kind != "" {
		return out.Kind
	}
	return fallback
}

func messageOf(out *Response, raw []byte) string {
	if out.Error != "" {
		return out.Error
	}
	if len(raw) > 200 {
		raw = raw[:200]
	}
	return string(raw)
}

// retryAfterOf extracts the server's wait hint: the millisecond-precise
// JSON field when the body parsed, else the whole-second Retry-After
// header.
func retryAfterOf(out *Response, h http.Header, bodyOK bool) time.Duration {
	if bodyOK && out.RetryAfterMS > 0 {
		return time.Duration(out.RetryAfterMS) * time.Millisecond
	}
	if s := h.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}
