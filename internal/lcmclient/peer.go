package lcmclient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"lazycm/internal/cachestore"
)

// ErrCacheMiss reports that a peer answered authoritatively that it
// does not hold the requested cache entry. It is the one "failure" of a
// peer fetch that says the peer is healthy.
var ErrCacheMiss = errors.New("lcmclient: peer cache miss")

// maxCacheEntry bounds what a peer fetch will buffer; it matches the
// server's own response ceiling.
const maxCacheEntry = 8 << 20

// FetchCacheEntry asks one fleet member for the content-addressed cache
// entry under key (GET /cache/<key>) and returns its verified payload.
// The wire format is cachestore's self-verifying encoding, and the
// entry is re-verified here against the key the caller asked for — a
// peer that answers with torn, truncated, or misfiled bytes produces an
// error, never a payload. Callers are expected to be strictly
// fail-open: any error from this function means "compute locally",
// nothing more.
func FetchCacheEntry(ctx context.Context, hc *http.Client, baseURL, key string) ([]byte, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	if !cachestore.ValidKey(key) {
		return nil, fmt.Errorf("lcmclient: invalid cache key %q", key)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, ErrCacheMiss
	default:
		return nil, fmt.Errorf("lcmclient: peer cache answered %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheEntry))
	if err != nil {
		return nil, err
	}
	payload, err := cachestore.Decode(key, data)
	if err != nil {
		return nil, err
	}
	return payload, nil
}
