// Package opt provides the cleanup passes that surround PRE in a realistic
// pipeline — copy propagation and dead-code elimination — and a driver
// that alternates them with Lazy Code Motion. PRE introduces temporaries
// and copies by design; propagation then exposes second-order
// redundancies (an expression over a PRE temporary is itself invariant),
// which a following LCM round can move. The PLDI'92 paper notes these
// second-order effects are handled by reapplication; experiment T5b
// measures exactly that.
package opt

import (
	"context"
	"fmt"

	"lazycm/internal/dataflow"
	"lazycm/internal/ir"
	"lazycm/internal/lcm"
	"lazycm/internal/live"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
)

// PropagateCopies performs block-local copy propagation on f in place: a
// use of v is rewritten to w when a copy v = w (w a variable or constant)
// reaches it within the same block with neither v nor w redefined in
// between. It returns the number of operand rewrites.
func PropagateCopies(f *ir.Function) int {
	rewrites := 0
	for _, b := range f.Blocks {
		// copyOf[v] is the operand v currently equals, if any.
		copyOf := make(map[string]ir.Operand)
		invalidate := func(d string) {
			delete(copyOf, d)
			for v, src := range copyOf {
				if src.Uses(d) {
					delete(copyOf, v)
				}
			}
		}
		subst := func(o ir.Operand) ir.Operand {
			if o.IsVar() {
				if src, ok := copyOf[o.Name]; ok {
					rewrites++
					return src
				}
			}
			return o
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			switch in.Kind {
			case ir.BinOp:
				in.A = subst(in.A)
				in.B = subst(in.B)
			case ir.Copy, ir.Print:
				in.A = subst(in.A)
			}
			if d := in.Defs(); d != "" {
				invalidate(d)
				if in.Kind == ir.Copy && !in.A.Uses(d) {
					copyOf[d] = in.A
				}
			}
		}
		if b.Term.Kind == ir.Branch {
			b.Term.Cond = subst(b.Term.Cond)
		}
		if b.Term.Kind == ir.Ret && b.Term.HasVal {
			b.Term.Val = subst(b.Term.Val)
		}
	}
	return rewrites
}

// EliminateDeadCode removes, in place and to a fixed point, assignments
// whose destination is dead immediately after the assignment. Print
// statements and terminators are never removed. It returns the number of
// statements deleted.
func EliminateDeadCode(f *ir.Function) (int, error) {
	return EliminateDeadCodeCtx(nil, f)
}

// EliminateDeadCodeCtx is EliminateDeadCode with cancellation: a non-nil
// ctx is polled once per elimination round (the DCE loop is itself a
// fixpoint) and inside each round's liveness solve. A nil ctx means
// "never canceled".
func EliminateDeadCodeCtx(ctx context.Context, f *ir.Function) (int, error) {
	return EliminateDeadCodeScratch(ctx, f, nil)
}

// EliminateDeadCodeScratch is EliminateDeadCodeCtx with a shared analysis
// arena: each elimination round's liveness solve draws its matrices from
// sc and releases them before the next round, so the whole DCE fixpoint
// recycles one backing store. Results are identical with or without it.
func EliminateDeadCodeScratch(ctx context.Context, f *ir.Function, sc *dataflow.Scratch) (int, error) {
	removed := 0
	for {
		if err := dataflow.Canceled(ctx, "opt-dce"); err != nil {
			return removed, err
		}
		u := props.Collect(f)
		g := nodes.Build(f, u)
		info, err := live.ComputeScratch(ctx, f, nil, sc)
		if err != nil {
			return removed, fmt.Errorf("opt: dce liveness: %w", err)
		}
		changedThisRound := 0
		for _, b := range f.Blocks {
			var kept []ir.Instr
			for j, in := range b.Instrs {
				d := in.Defs()
				if d != "" && !info.LiveAfter(g.FirstOf(b)+j, d) {
					changedThisRound++
					continue
				}
				if in.Kind == ir.Nop {
					changedThisRound++
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		info.Release()
		if changedThisRound == 0 {
			return removed, nil
		}
		removed += changedThisRound
		f.Recompute()
	}
}

// PipelineResult summarizes one Pipeline run.
type PipelineResult struct {
	// F is the final function.
	F *ir.Function
	// Rounds records per-round statistics.
	Rounds []RoundStats
}

// RoundStats is one round's effect.
type RoundStats struct {
	Inserted, Replaced, CopiesPropagated, DeadRemoved int
}

// Options tunes the reapplication driver.
type Options struct {
	// MaxRounds bounds the [LCM, copy propagation, DCE] reapplication
	// loop. Zero or negative means the DefaultMaxRounds cap — the loop is
	// always bounded, so a pass that keeps "improving" a function forever
	// (an oscillation bug) terminates with the rounds exhausted rather
	// than spinning.
	MaxRounds int
	// Fuel bounds each data-flow problem inside every round; 0 means
	// unlimited.
	Fuel int
	// Ctx, when non-nil, is polled at round boundaries and inside every
	// fixpoint of every round; once done the run fails with an error
	// unwrapping to dataflow.ErrCanceled. Nil means "never canceled".
	Ctx context.Context
	// Scratch, when non-nil, is the shared analysis arena reused by the
	// LCM analyses of every round; see dataflow.Scratch. Purely an
	// allocation optimization — results are identical with or without it.
	Scratch *dataflow.Scratch
}

// DefaultMaxRounds is the reapplication cap used when Options.MaxRounds
// is unset.
const DefaultMaxRounds = 16

// Pipeline runs up to maxRounds of [LCM, copy propagation, DCE] over a
// clone of f, stopping early when a round changes nothing. This realizes
// the paper's reapplication story for second-order redundancies.
func Pipeline(f *ir.Function, maxRounds int) (*PipelineResult, error) {
	return PipelineOpts(f, Options{MaxRounds: maxRounds})
}

// PipelineOpts is Pipeline with full options.
func PipelineOpts(f *ir.Function, o Options) (*PipelineResult, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("opt: input invalid: %w", err)
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = DefaultMaxRounds
	}
	cur := f.Clone()
	res := &PipelineResult{}
	for round := 0; round < o.MaxRounds; round++ {
		if err := dataflow.Canceled(o.Ctx, "opt-rounds"); err != nil {
			return nil, err
		}
		var rs RoundStats
		lres, err := lcm.TransformOpts(cur, lcm.LCM, lcm.Options{Fuel: o.Fuel, Ctx: o.Ctx, Scratch: o.Scratch})
		if err != nil {
			return nil, err
		}
		cur = lres.F
		rs.Inserted, rs.Replaced = lres.Inserted, lres.Replaced
		// The predicates are no longer needed once the edits are applied;
		// recycle them so every round reuses one arena-backed store.
		lres.Release()
		rs.CopiesPropagated = PropagateCopies(cur)
		rs.DeadRemoved, err = EliminateDeadCodeScratch(o.Ctx, cur, o.Scratch)
		if err != nil {
			return nil, err
		}
		cur.Simplify()
		cur.Recompute()
		if err := cur.Validate(); err != nil {
			return nil, fmt.Errorf("opt: round %d produced invalid function: %w", round, err)
		}
		res.Rounds = append(res.Rounds, rs)
		if rs.Inserted == 0 && rs.Replaced == 0 && rs.CopiesPropagated == 0 && rs.DeadRemoved == 0 {
			break
		}
	}
	res.F = cur
	return res, nil
}
