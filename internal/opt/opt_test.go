package opt

import (
	"testing"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/randprog"
	"lazycm/internal/textir"
	"lazycm/internal/verify"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPropagateCopiesBasic(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a
  y = x + b
  ret y
}`)
	n := PropagateCopies(f)
	if n != 1 {
		t.Fatalf("rewrites = %d\n%s", n, f)
	}
	if got := f.Entry().Instrs[1].String(); got != "y = a + b" {
		t.Errorf("propagation wrong: %q", got)
	}
}

func TestPropagateCopiesConstant(t *testing.T) {
	f := parse(t, `
func f() {
e:
  x = 5
  print x
  ret x
}`)
	PropagateCopies(f)
	if got := f.Entry().Instrs[1].String(); got != "print 5" {
		t.Errorf("constant not propagated: %q", got)
	}
	if !f.Entry().Term.Val.IsConst() {
		t.Errorf("ret operand not propagated:\n%s", f)
	}
}

func TestPropagateCopiesInvalidation(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a
  a = 9
  y = x + b
  ret y
}`)
	before, _, _ := interp.Run(parse(t, `
func f(a, b) {
e:
  x = a
  a = 9
  y = x + b
  ret y
}`), interp.Options{Args: []int64{2, 3}})
	PropagateCopies(f)
	// x = a must NOT propagate into y = x + b (a was redefined).
	after, _, err := interp.Run(f, interp.Options{Args: []int64{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !before.ObservablyEqual(after) {
		t.Errorf("copy propagated across kill: %s vs %s\n%s", before, after, f)
	}
}

func TestPropagateCopiesSelfCopy(t *testing.T) {
	f := parse(t, `
func f(a) {
e:
  x = a
  x = x
  y = x + 1
  ret y
}`)
	PropagateCopies(f)
	out, _, _ := interp.Run(f, interp.Options{Args: []int64{4}})
	if out.Value != 5 {
		t.Errorf("value = %s\n%s", out, f)
	}
}

func TestPropagateBranchCond(t *testing.T) {
	f := parse(t, `
func f(a) {
e:
  c = a
  br c y n
y:
  ret 1
n:
  ret 0
}`)
	PropagateCopies(f)
	if f.Entry().Term.Cond.Name != "a" {
		t.Errorf("branch condition not propagated:\n%s", f)
	}
}

func TestEliminateDeadCode(t *testing.T) {
	f := parse(t, `
func f(a, b) {
e:
  x = a + b
  y = a * b
  nop
  ret x
}`)
	n, err := EliminateDeadCode(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("removed = %d, want 2 (dead y and nop)\n%s", n, f)
	}
	if len(f.Entry().Instrs) != 1 {
		t.Errorf("instrs = %d\n%s", len(f.Entry().Instrs), f)
	}
}

func TestDCECascade(t *testing.T) {
	// y depends on dead z: both must go (fixed point).
	f := parse(t, `
func f(a) {
e:
  z = a + 1
  y = z * 2
  ret a
}`)
	n, err := EliminateDeadCode(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("removed = %d, want 2\n%s", n, f)
	}
}

func TestDCEKeepsPrintsAndLoopState(t *testing.T) {
	f := parse(t, `
func f(a, n) {
entry:
  i = 0
  jmp body
body:
  x = a + 1
  print x
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret
}`)
	if _, err := EliminateDeadCode(f); err != nil {
		t.Fatal(err)
	}
	out, _, err := interp.Run(f, interp.Options{Args: []int64{7, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Prints) != 3 || out.Prints[0] != 8 {
		t.Errorf("prints lost: %s\n%s", out, f)
	}
}

// TestPipelineSecondOrder is the T5b scenario: after LCM hoists a+b into
// t, copy propagation turns x*2 into t*2, and a second LCM round hoists it
// too — the reapplication story for second-order redundancies.
func TestPipelineSecondOrder(t *testing.T) {
	src := `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  y = x * 2
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret y
}`
	f := parse(t, src)
	res, err := Pipeline(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Both expressions must now be evaluated once per execution.
	args := []int64{3, 4, 25}
	_, before, _ := interp.Run(f, interp.Options{Args: args})
	_, after, _ := interp.Run(res.F, interp.Options{Args: args})
	if before.Total() <= after.Total() {
		t.Fatalf("pipeline did not reduce work: %d -> %d\n%s", before.Total(), after.Total(), res.F)
	}
	// Count evaluations of binops inside the final loop body: the
	// invariant chain must be fully hoisted, so per-iteration work is only
	// the induction expressions (i+1, i<n).
	outBefore, _, _ := interp.Run(f, interp.Options{Args: args})
	outAfter, _, _ := interp.Run(res.F, interp.Options{Args: args})
	if !outBefore.ObservablyEqual(outAfter) {
		t.Fatalf("pipeline changed behaviour: %s vs %s\n%s", outBefore, outAfter, res.F)
	}
	// 25 iterations: i+1 and i<n are 25 each; a+b and (x|t)*2 once each.
	if got := after.Total(); got != 52 {
		t.Errorf("final evaluation count = %d, want 52 (2 + 2*25)\n%s", got, res.F)
	}
	if len(res.Rounds) < 2 {
		t.Errorf("expected at least 2 effective rounds, got %d", len(res.Rounds))
	}
}

func TestPipelineOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f := randprog.ForSeed(seed)
		res, err := Pipeline(f, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify.Equivalent(f, res.F, seed*17, 4); err != nil {
			t.Fatalf("seed %d: %v\noriginal:\n%s\nfinal:\n%s", seed, err, f, res.F)
		}
		// Copy propagation rewrites operands, so per-lexeme counts shift
		// between expressions; the per-path guarantee for the pipeline is
		// on the TOTAL number of evaluations.
		for run := 0; run < 4; run++ {
			args := randprog.Args(f, seed*17+int64(run))
			_, before, err := interp.Run(f, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			_, after, err := interp.Run(res.F, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			if after.Total() > before.Total() {
				t.Fatalf("seed %d args %v: pipeline made the path worse: %d > %d\n%s",
					seed, args, after.Total(), before.Total(), res.F)
			}
		}
	}
}

func TestPipelineStopsEarly(t *testing.T) {
	f := parse(t, `
func f(a) {
e:
  print a
  ret a
}`)
	res, err := Pipeline(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Errorf("rounds = %d, want 1 (nothing to do)", len(res.Rounds))
	}
}

func TestPipelineInvalidInput(t *testing.T) {
	f := parse(t, `
func f(a) {
e:
  ret a
}`)
	f.Blocks[0].ID = 3
	if _, err := Pipeline(f, 2); err == nil {
		t.Error("invalid input accepted")
	}
}
