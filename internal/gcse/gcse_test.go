package gcse

import (
	"testing"

	"lazycm/internal/interp"
	"lazycm/internal/ir"
	"lazycm/internal/textir"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := textir.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func transform(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Transform(parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFullRedundancyEliminated(t *testing.T) {
	src := `
func f(a, b) {
e:
  x = a + b
  y = a + b
  ret y
}`
	res := transform(t, src)
	if res.Replaced != 1 || res.Saved != 1 {
		t.Fatalf("replaced=%d saved=%d, want 1/1\n%s", res.Replaced, res.Saved, res.F)
	}
	_, counts, err := interp.Run(res.F, interp.Options{Args: []int64{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	if counts[add] != 1 {
		t.Errorf("a+b evaluated %d times, want 1", counts[add])
	}
	out, _, _ := interp.Run(res.F, interp.Options{Args: []int64{2, 3}})
	if out.Value != 5 {
		t.Errorf("value = %s", out)
	}
}

func TestAcrossBlocks(t *testing.T) {
	src := `
func f(a, b, c) {
entry:
  x = a * b
  br c l r
l:
  p = a * b
  jmp out
r:
  q = a * b
  jmp out
out:
  z = a * b
  ret z
}`
	res := transform(t, src)
	if res.Replaced != 3 || res.Saved != 1 {
		t.Fatalf("replaced=%d saved=%d, want 3/1\n%s", res.Replaced, res.Saved, res.F)
	}
}

func TestPartialRedundancyNotEliminated(t *testing.T) {
	// The diamond: GCSE must NOT touch it (no full redundancy) — that gap
	// is what PRE closes.
	res := transform(t, `
func f(a, b, c) {
entry:
  br c then else
then:
  x = a + b
  jmp join
else:
  jmp join
join:
  y = a + b
  ret y
}`)
	if res.Replaced != 0 || res.Saved != 0 {
		t.Errorf("GCSE touched a partial redundancy: %d/%d\n%s", res.Replaced, res.Saved, res.F)
	}
}

func TestKillBlocks(t *testing.T) {
	res := transform(t, `
func f(a, b) {
e:
  x = a + b
  a = 0
  y = a + b
  ret y
}`)
	if res.Replaced != 0 {
		t.Errorf("redundancy across a kill eliminated\n%s", res.F)
	}
	out, _, _ := interp.Run(res.F, interp.Options{Args: []int64{7, 3}})
	if out.Value != 3 {
		t.Errorf("value = %s", out)
	}
}

func TestIntraBlockChain(t *testing.T) {
	src := `
func f(a, b) {
e:
  p = a + b
  q = a + b
  r = a + b
  ret r
}`
	res := transform(t, src)
	if res.Replaced != 2 || res.Saved != 1 {
		t.Fatalf("replaced=%d saved=%d\n%s", res.Replaced, res.Saved, res.F)
	}
	_, counts, _ := interp.Run(res.F, interp.Options{Args: []int64{1, 1}})
	add := ir.Expr{Op: ir.Add, A: ir.Var("a"), B: ir.Var("b")}
	if counts[add] != 1 {
		t.Errorf("count = %d", counts[add])
	}
}

func TestSelfKillAvailability(t *testing.T) {
	// a = a + b computes but does not make a+b available.
	res := transform(t, `
func f(a, b) {
e:
  a = a + b
  y = a + b
  ret y
}`)
	if res.Replaced != 0 {
		t.Errorf("availability across self-kill\n%s", res.F)
	}
	f := parse(t, `
func f(a, b) {
e:
  a = a + b
  y = a + b
  ret y
}`)
	for _, args := range [][]int64{{1, 2}, {5, -3}} {
		orig, _, _ := interp.Run(f, interp.Options{Args: args})
		got, _, _ := interp.Run(res.F, interp.Options{Args: args})
		if !orig.ObservablyEqual(got) {
			t.Errorf("args %v: %s vs %s", args, orig, got)
		}
	}
}

func TestNoCandidates(t *testing.T) {
	res := transform(t, `
func f(a) {
e:
  x = a
  ret x
}`)
	if res.Replaced != 0 || res.Saved != 0 || len(res.TempFor) != 0 {
		t.Error("GCSE did something on a candidate-free function")
	}
}

func TestInputNotMutatedAndDeterministic(t *testing.T) {
	src := `
func f(a, b) {
e:
  x = a + b
  y = a + b
  ret y
}`
	f := parse(t, src)
	before := f.String()
	res1, err := Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Error("input mutated")
	}
	for i := 0; i < 10; i++ {
		res2, _ := Transform(f)
		if res2.F.String() != res1.F.String() {
			t.Fatal("nondeterministic")
		}
	}
}

func TestLoopAvailability(t *testing.T) {
	// In a bottom-test loop, the second iteration onward has the value
	// available; GCSE alone cannot exploit that (the computation is its
	// own generator around the back edge, but it IS available at itself
	// only if available on ALL paths, including entry). Check it stays
	// safe and correct.
	src := `
func f(a, b, n) {
entry:
  i = 0
  jmp body
body:
  x = a + b
  i = i + 1
  c = i < n
  br c body exit
exit:
  ret x
}`
	f := parse(t, src)
	res := transform(t, src)
	args := []int64{2, 3, 6}
	orig, origCounts, _ := interp.Run(f, interp.Options{Args: args})
	got, newCounts, _ := interp.Run(res.F, interp.Options{Args: args})
	if !orig.ObservablyEqual(got) {
		t.Fatalf("behaviour changed: %s vs %s", orig, got)
	}
	if newCounts.Total() > origCounts.Total() {
		t.Error("GCSE made the program worse")
	}
}
