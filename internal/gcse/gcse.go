// Package gcse implements global common-subexpression elimination on fully
// redundant computations only: a computation is rewritten to reuse a
// temporary exactly when the expression is available (up-safe) at it. This
// is the weaker classical optimization that PRE generalizes; experiment T6
// checks that Lazy Code Motion eliminates a superset of what GCSE
// eliminates, on every input.
//
// The transformation, for each candidate expression e with temporary t:
// every computation x = e at which e is available becomes "x = t", and
// every surviving computation becomes "t = e; x = t" so that the value is
// captured wherever availability may later rely on it. No computations are
// ever inserted, so GCSE can never slow a program down — and never removes
// partial redundancies.
package gcse

import (
	"context"
	"fmt"

	"lazycm/internal/bitvec"
	"lazycm/internal/dataflow"
	"lazycm/internal/ir"
	"lazycm/internal/nodes"
	"lazycm/internal/props"
)

// Options tunes a transformation run.
type Options struct {
	// Fuel bounds the availability analysis in node visits; 0 means
	// unlimited.
	Fuel int
	// Ctx, when non-nil, is polled at iteration boundaries of the
	// availability fixpoint; once done the run fails with an error
	// unwrapping to dataflow.ErrCanceled. Nil means "never canceled".
	Ctx context.Context
}

// Result is the outcome of the GCSE transformation.
type Result struct {
	// F is the transformed clone; the input is not mutated.
	F *ir.Function
	// TempFor maps each touched expression to its temporary.
	TempFor map[ir.Expr]string
	// Replaced counts rewritten fully redundant computations; Saved counts
	// the capture copies added at surviving computations.
	Replaced, Saved int
	// Stats is the availability solver's effort.
	Stats dataflow.Stats
}

// Transform applies GCSE to a clone of f.
func Transform(f *ir.Function) (*Result, error) {
	return TransformOpts(f, Options{})
}

// TransformFuel is Transform with a node-visit budget on the availability
// analysis; 0 means unlimited.
func TransformFuel(f *ir.Function, fuel int) (*Result, error) {
	return TransformOpts(f, Options{Fuel: fuel})
}

// TransformOpts is Transform with full options (fuel and cancellation).
func TransformOpts(f *ir.Function, o Options) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("gcse: input invalid: %w", err)
	}
	clone := f.Clone()
	u := props.Collect(clone)
	g := nodes.Build(clone, u)
	n := g.NumNodes()
	w := u.Size()

	notTransp := bitvec.NewMatrix(n, w)
	usafeGen := bitvec.NewMatrix(n, w)
	for i := 0; i < n; i++ {
		row := notTransp.Row(i)
		row.CopyFrom(g.Transp.Row(i))
		row.Not()
		gen := usafeGen.Row(i)
		gen.CopyFrom(g.Comp.Row(i))
		gen.And(g.Transp.Row(i))
	}
	avail, err := dataflow.Solve(g, &dataflow.Problem{
		Name: "gcse-avail", Dir: dataflow.Forward, Meet: dataflow.Must,
		Width: w, Gen: usafeGen, Kill: notTransp,
		Boundary: dataflow.BoundaryEmpty, Fuel: o.Fuel, Ctx: o.Ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("gcse: %w", err)
	}

	res := &Result{F: clone, TempFor: make(map[ir.Expr]string), Stats: avail.Stats}

	// An expression is touched if any computation of it is fully
	// redundant (available at its own node).
	touched := make([]bool, w)
	for id, nd := range g.Nodes {
		if nd.Kind != nodes.Stmt {
			continue
		}
		if e, ok := nd.Block.Instrs[nd.Index].Expr(); ok {
			if i, found := u.Index(e); found && avail.In.Get(id, i) {
				touched[i] = true
			}
		}
	}
	used := make(map[string]bool)
	for _, v := range clone.Vars() {
		used[v] = true
	}
	tempName := make([]string, w)
	next := 0
	for e := range touched {
		if !touched[e] {
			continue
		}
		for {
			cand := fmt.Sprintf("g%d", next)
			next++
			if !used[cand] {
				tempName[e] = cand
				used[cand] = true
				res.TempFor[u.Expr(e)] = cand
				break
			}
		}
	}

	// Rewrite per block: replace computations where available, save where
	// not. Iterating the node graph gives us the availability bit per
	// statement; edits are collected per block and applied back to front.
	type edit struct {
		idx     int
		replace bool
		expr    int
	}
	editsByBlock := make(map[*ir.Block][]edit)
	for id, nd := range g.Nodes {
		if nd.Kind != nodes.Stmt {
			continue
		}
		e, ok := nd.Block.Instrs[nd.Index].Expr()
		if !ok {
			continue
		}
		i, found := u.Index(e)
		if !found || tempName[i] == "" {
			continue
		}
		editsByBlock[nd.Block] = append(editsByBlock[nd.Block], edit{
			idx: nd.Index, replace: avail.In.Get(id, i), expr: i,
		})
	}
	for blk, edits := range editsByBlock {
		for j := len(edits) - 1; j >= 0; j-- {
			ed := edits[j]
			in := blk.Instrs[ed.idx]
			t := tempName[ed.expr]
			if ed.replace {
				blk.Instrs[ed.idx] = ir.NewCopy(in.Dst, ir.Var(t))
				res.Replaced++
			} else {
				ex := u.Expr(ed.expr)
				blk.Instrs[ed.idx] = ir.NewCopy(in.Dst, ir.Var(t))
				blk.InsertAt(ed.idx, ir.NewBinOp(t, ex.Op, ex.A, ex.B))
				res.Saved++
			}
		}
	}
	clone.Recompute()
	if err := clone.Validate(); err != nil {
		return nil, fmt.Errorf("gcse: transformed function invalid: %w", err)
	}
	return res, nil
}
