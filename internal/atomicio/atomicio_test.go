package atomicio

import (
	"os"
	"path/filepath"
	"testing"

	"lazycm/internal/vfs"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q, want v2", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("perm = %v, want 0600", info.Mode().Perm())
	}
	// No tmp leftovers once the write published.
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if len(leftovers) != 0 {
		t.Errorf("tmp leftovers after successful write: %v", leftovers)
	}
}

func TestCreateExclusive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash-abc.ir")
	if err := CreateExclusive(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := CreateExclusive(path, []byte("second"), 0o644)
	if !os.IsExist(err) {
		t.Fatalf("second create: err = %v, want ErrExist", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "first" {
		t.Fatalf("loser overwrote the file: %q", got)
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if len(leftovers) != 0 {
		t.Errorf("tmp leftovers: %v", leftovers)
	}
}

func TestSweepTmp(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-write leaves a partial tmp; a published file must
	// survive the sweep.
	tmp := filepath.Join(dir, "crash-dead.ir-123"+TmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "crash-live.ir")
	if err := os.WriteFile(keep, []byte("whole"), 0o644); err != nil {
		t.Fatal(err)
	}
	SweepTmp(dir)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("stale tmp survived the sweep: %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("published file swept: %v", err)
	}
	SweepTmp(filepath.Join(dir, "missing")) // no panic on absent dirs
}

// TestWriteFileFaultsLeaveNoPartialTarget drives WriteFileFS through
// every injected failure mode and asserts the target is always either
// the old content or the new content — never truncated, never missing
// after a plain write error.
func TestWriteFileFaultsLeaveNoPartialTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	fault := vfs.NewFaultFS(vfs.OS, 3)

	// ENOSPC on the tmp write: target untouched, tmp cleaned up.
	fault.SetWindow(vfs.Window{WriteErrProb: 1})
	if err := WriteFileFS(fault, path, []byte("new-1"), 0o644); err == nil {
		t.Fatal("write under ENOSPC must fail")
	}
	fault.SetWindow(vfs.Window{})
	if b, _ := os.ReadFile(path); string(b) != "old" {
		t.Fatalf("target after failed write = %q, want old", b)
	}

	// Short write on the tmp file: the partial bytes land only in the
	// tmp sibling; the target still holds the old content.
	fault.SetWindow(vfs.Window{ShortWriteProb: 1})
	if err := WriteFileFS(fault, path, []byte("new-22"), 0o644); err == nil {
		t.Fatal("short write must fail")
	}
	fault.SetWindow(vfs.Window{})
	if b, _ := os.ReadFile(path); string(b) != "old" {
		t.Fatalf("target after short write = %q, want old", b)
	}

	// Torn rename: the worst case — the target is dropped. The caller
	// sees the error, and re-running the write restores the file. The
	// disk cache treats a missing entry as a miss, so this costs a
	// recompute, never a wrong byte.
	fault.SetWindow(vfs.Window{TornRenameProb: 1})
	if err := WriteFileFS(fault, path, []byte("new-3"), 0o644); err == nil {
		t.Fatal("torn rename must surface as an error")
	}
	fault.SetWindow(vfs.Window{})
	if err := WriteFileFS(fault, path, []byte("new-3"), 0o644); err != nil {
		t.Fatalf("retry after torn rename: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "new-3" {
		t.Fatalf("target after retry = %q, want new-3", b)
	}

	// Whatever tmp siblings the faults stranded, one clean sweep
	// removes them all.
	SweepTmp(dir)
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if len(leftovers) != 0 {
		t.Fatalf("tmp leftovers after sweep: %v", leftovers)
	}
}

// TestSweepTmpUnderFaults is the regression for a sweep that faults
// midway: it must leave no half-deleted state (published files intact,
// only whole tmp files remaining) and the next healthy sweep must
// finish the cleanup.
func TestSweepTmpUnderFaults(t *testing.T) {
	dir := t.TempDir()
	var tmps []string
	for i := 0; i < 8; i++ {
		p := filepath.Join(dir, "w-"+string(rune('a'+i))+TmpSuffix)
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
		tmps = append(tmps, p)
	}
	keep := filepath.Join(dir, "published.ce")
	if err := os.WriteFile(keep, []byte("whole"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Half the removes fail. The sweep must keep going past failures
	// and must never touch the published file.
	fault := vfs.NewFaultFS(vfs.OS, 11)
	fault.SetWindow(vfs.Window{RemoveErrProb: 0.5})
	SweepTmpFS(fault, dir)
	if b, err := os.ReadFile(keep); err != nil || string(b) != "whole" {
		t.Fatalf("published file damaged by faulted sweep: %q, %v", b, err)
	}
	survivors := 0
	for _, p := range tmps {
		if _, err := os.Stat(p); err == nil {
			survivors++
		}
	}
	if survivors == 0 || survivors == len(tmps) {
		// Seed 11 at p=0.5 must fail some and pass some; if this trips
		// the seed needs adjusting, not the sweep.
		t.Fatalf("want a partial sweep, got %d/%d survivors", survivors, len(tmps))
	}

	// A sweep whose directory listing faults is a no-op, not a crash.
	fault.SetWindow(vfs.Window{ReadErrProb: 1})
	SweepTmpFS(fault, dir)

	// The next healthy sweep completes the cleanup.
	fault.SetWindow(vfs.Window{})
	SweepTmpFS(fault, dir)
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if len(leftovers) != 0 {
		t.Fatalf("tmp leftovers after healthy sweep: %v", leftovers)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("published file swept: %v", err)
	}
}
