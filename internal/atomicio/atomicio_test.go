package atomicio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q, want v2", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("perm = %v, want 0600", info.Mode().Perm())
	}
	// No tmp leftovers once the write published.
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if len(leftovers) != 0 {
		t.Errorf("tmp leftovers after successful write: %v", leftovers)
	}
}

func TestCreateExclusive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash-abc.ir")
	if err := CreateExclusive(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := CreateExclusive(path, []byte("second"), 0o644)
	if !os.IsExist(err) {
		t.Fatalf("second create: err = %v, want ErrExist", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "first" {
		t.Fatalf("loser overwrote the file: %q", got)
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if len(leftovers) != 0 {
		t.Errorf("tmp leftovers: %v", leftovers)
	}
}

func TestSweepTmp(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-write leaves a partial tmp; a published file must
	// survive the sweep.
	tmp := filepath.Join(dir, "crash-dead.ir-123"+TmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "crash-live.ir")
	if err := os.WriteFile(keep, []byte("whole"), 0o644); err != nil {
		t.Fatal(err)
	}
	SweepTmp(dir)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("stale tmp survived the sweep: %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("published file swept: %v", err)
	}
	SweepTmp(filepath.Join(dir, "missing")) // no panic on absent dirs
}
