// Package atomicio holds the crash-atomic file primitives shared by
// every subsystem that persists state a killed process must never leave
// half-written: the disk cache tier (internal/cachestore), quarantine
// capture (internal/lcmserver), and triage promotion (internal/triage).
// Both primitives follow the same discipline — write the full content
// to a uniquely named *.tmp sibling, fsync it, then publish with one
// atomic link/rename — so a crash at any instant leaves either the old
// file, the new file, or an ignorable *.tmp leftover, never a partial
// target.
package atomicio

import (
	"os"
	"path/filepath"
)

// TmpSuffix is the extension every in-progress write carries. Scanners
// of durable directories must ignore it, and sweepers (SweepTmp) may
// delete any leftover bearing it: a *.tmp file is by construction
// either mid-write or abandoned by a crash.
const TmpSuffix = ".tmp"

// WriteFile atomically replaces path with data: tmp sibling, fsync,
// rename. Like os.WriteFile, but a process killed mid-call can never
// leave a truncated or interleaved path behind.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	tmp, err := writeTmp(path, data, perm)
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// CreateExclusive atomically creates path with data, failing with
// os.ErrExist when path already exists. The exclusivity check and the
// publication are one os.Link call, so two concurrent writers of the
// same path produce exactly one file and exactly one winner — the
// crash-safe replacement for O_CREATE|O_EXCL followed by writes.
func CreateExclusive(path string, data []byte, perm os.FileMode) error {
	tmp, err := writeTmp(path, data, perm)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if err := os.Link(tmp, path); err != nil {
		if os.IsExist(err) {
			return os.ErrExist
		}
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// SweepTmp removes every *.tmp leftover in dir — writes abandoned by a
// crash. Callers run it on startup, before trusting the directory's
// contents. Missing directories and individual remove failures are
// ignored: sweeping is hygiene, never load-bearing.
func SweepTmp(dir string) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if err != nil {
		return
	}
	for _, p := range paths {
		os.Remove(p)
	}
}

// writeTmp writes data to a unique tmp sibling of path and fsyncs it.
func writeTmp(path string, data []byte, perm os.FileMode) (string, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+"-*"+TmpSuffix)
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	err = firstErr(werr, serr, cerr, os.Chmod(tmp, perm))
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	return tmp, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// syncDir fsyncs a directory so the rename/link that just published a
// file is itself durable. Best-effort: some filesystems refuse directory
// fsync, and the publication is already atomic without it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
