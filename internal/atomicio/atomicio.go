// Package atomicio holds the crash-atomic file primitives shared by
// every subsystem that persists state a killed process must never leave
// half-written: the disk cache tier (internal/cachestore), quarantine
// capture (internal/lcmserver), and triage promotion (internal/triage).
// Both primitives follow the same discipline — write the full content
// to a uniquely named *.tmp sibling, fsync it, then publish with one
// atomic link/rename — so a crash at any instant leaves either the old
// file, the new file, or an ignorable *.tmp leftover, never a partial
// target.
//
// All file IO goes through internal/vfs so fault-injecting tests can
// make the disk lie (ENOSPC, torn renames, stalled fsyncs) underneath
// these primitives. The plain entry points (WriteFile, CreateExclusive,
// SweepTmp) run against the real filesystem via vfs.OS; the *FS
// variants take the filesystem explicitly.
package atomicio

import (
	"os"
	"path/filepath"
	"strings"

	"lazycm/internal/vfs"
)

// TmpSuffix is the extension every in-progress write carries. Scanners
// of durable directories must ignore it, and sweepers (SweepTmp) may
// delete any leftover bearing it: a *.tmp file is by construction
// either mid-write or abandoned by a crash.
const TmpSuffix = ".tmp"

// WriteFile atomically replaces path with data: tmp sibling, fsync,
// rename. Like os.WriteFile, but a process killed mid-call can never
// leave a truncated or interleaved path behind.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileFS(vfs.OS, path, data, perm)
}

// WriteFileFS is WriteFile against an explicit filesystem.
func WriteFileFS(fsys vfs.FS, path string, data []byte, perm os.FileMode) error {
	tmp, err := writeTmp(fsys, path, data, perm)
	if err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	syncDir(fsys, filepath.Dir(path))
	return nil
}

// CreateExclusive atomically creates path with data, failing with
// os.ErrExist when path already exists. The exclusivity check and the
// publication are one os.Link call, so two concurrent writers of the
// same path produce exactly one file and exactly one winner — the
// crash-safe replacement for O_CREATE|O_EXCL followed by writes.
func CreateExclusive(path string, data []byte, perm os.FileMode) error {
	return CreateExclusiveFS(vfs.OS, path, data, perm)
}

// CreateExclusiveFS is CreateExclusive against an explicit filesystem.
func CreateExclusiveFS(fsys vfs.FS, path string, data []byte, perm os.FileMode) error {
	tmp, err := writeTmp(fsys, path, data, perm)
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp)
	if err := fsys.Link(tmp, path); err != nil {
		if os.IsExist(err) {
			return os.ErrExist
		}
		return err
	}
	syncDir(fsys, filepath.Dir(path))
	return nil
}

// SweepTmp removes every *.tmp leftover in dir — writes abandoned by a
// crash. Callers run it on startup, before trusting the directory's
// contents. Missing directories and individual remove failures are
// ignored: sweeping is hygiene, never load-bearing, and a sweep that
// faults midway leaves only files a later sweep can still remove.
func SweepTmp(dir string) {
	SweepTmpFS(vfs.OS, dir)
}

// SweepTmpFS is SweepTmp against an explicit filesystem.
func SweepTmpFS(fsys vfs.FS, dir string) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), TmpSuffix) {
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// writeTmp writes data to a unique tmp sibling of path and fsyncs it.
func writeTmp(fsys vfs.FS, path string, data []byte, perm os.FileMode) (string, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := fsys.CreateTemp(dir, base+"-*"+TmpSuffix)
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	err = firstErr(werr, serr, cerr, fsys.Chmod(tmp, perm))
	if err != nil {
		fsys.Remove(tmp)
		return "", err
	}
	return tmp, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// syncDir fsyncs a directory so the rename/link that just published a
// file is itself durable. Best-effort: some filesystems refuse directory
// fsync, and the publication is already atomic without it.
func syncDir(fsys vfs.FS, dir string) {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
