package ir

// Simplify tidies the CFG in place without changing semantics:
//
//   - forwarding: an empty block ending in an unconditional jump is removed
//     and its predecessors retargeted (this folds away critical-edge split
//     blocks that received no insertion);
//   - merging: a block with a unique successor whose unique predecessor it
//     is absorbs that successor.
//
// The entry block is never removed. Simplify runs to a fixed point and
// returns the number of blocks eliminated. Callers get a recomputed,
// valid function back.
func (f *Function) Simplify() int {
	removed := 0
	for {
		changed := false

		// Forwarding of empty jump blocks.
		for _, b := range f.Blocks {
			if b == f.Entry() || len(b.Instrs) != 0 || b.Term.Kind != Jump {
				continue
			}
			target := b.Term.Then
			if target == b {
				continue // degenerate self-loop; validation rejects these anyway
			}
			for _, p := range f.Blocks {
				for i, n := 0, p.NumSuccs(); i < n; i++ {
					if p.Succ(i) == b {
						p.SetSucc(i, target)
					}
				}
			}
			f.removeBlock(b)
			removed++
			changed = true
			break // block list changed; restart scan
		}
		if changed {
			f.Recompute()
			continue
		}

		// Straight-line merging.
		for _, b := range f.Blocks {
			if b.Term.Kind != Jump {
				continue
			}
			s := b.Term.Then
			if s == b || s == f.Entry() || len(s.Preds()) != 1 {
				continue
			}
			b.Instrs = append(b.Instrs, s.Instrs...)
			b.Term = s.Term
			f.removeBlock(s)
			removed++
			changed = true
			break
		}
		if !changed {
			return removed
		}
		f.Recompute()
	}
}

// removeBlock deletes b from the function's block list. The caller must
// Recompute afterwards.
func (f *Function) removeBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}
