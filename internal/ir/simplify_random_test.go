package ir_test

// Simplify's unit tests cover the rewrite shapes; this file checks the
// semantic contract on arbitrary programs, including ones that LCM has
// already peppered with split blocks.

import (
	"testing"

	"lazycm/internal/interp"
	"lazycm/internal/lcm"
	"lazycm/internal/randprog"
)

func TestSimplifyPreservesSemanticsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f := randprog.ForSeed(seed)
		// Transform first so there are split blocks to fold away.
		res, err := lcm.Transform(f, lcm.LCM)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := res.F
		before := g.NumBlocks()
		removed := g.Simplify()
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: simplified function invalid: %v\n%s", seed, err, g)
		}
		if g.NumBlocks() != before-removed {
			t.Fatalf("seed %d: removed count inconsistent: %d blocks, was %d, removed %d",
				seed, g.NumBlocks(), before, removed)
		}
		for run := 0; run < 4; run++ {
			args := randprog.Args(f, seed*23+int64(run))
			a, _, err := interp.Run(f, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := interp.Run(g, interp.Options{Args: args})
			if err != nil {
				t.Fatal(err)
			}
			if !a.ObservablyEqual(b) {
				t.Fatalf("seed %d args %v: %s vs %s\n%s", seed, args, a, b, g)
			}
		}
	}
}
