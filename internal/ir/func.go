package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Function is a procedure: an ordered list of basic blocks. Blocks[0] is
// the entry block. Params are the variables defined on entry; all other
// variables are local and start undefined (reading one before writing it is
// a validation error caught by Validate's definite-assignment check only in
// tests that ask for it; the interpreter treats undefined reads as zero for
// totality).
type Function struct {
	Name   string
	Params []string
	Blocks []*Block
}

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		panic("ir: function has no blocks")
	}
	return f.Blocks[0]
}

// NumBlocks returns the number of blocks.
func (f *Function) NumBlocks() int { return len(f.Blocks) }

// Recompute renumbers blocks with dense IDs in Blocks order and rebuilds
// predecessor lists. Call it after any structural mutation.
func (f *Function) Recompute() {
	for i, b := range f.Blocks {
		b.ID = i
		b.preds = b.preds[:0]
	}
	for _, b := range f.Blocks {
		for i, n := 0, b.NumSuccs(); i < n; i++ {
			s := b.Succ(i)
			s.preds = append(s.preds, b)
		}
	}
}

// BlockByName returns the block with the given name, or nil.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// AddBlock appends a block with the given name and returns it. The caller
// must Recompute after wiring its edges.
func (f *Function) AddBlock(name string) *Block {
	b := &Block{Name: name, ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// FreshBlockName returns a block name with the given prefix that is not yet
// used in the function.
func (f *Function) FreshBlockName(prefix string) string {
	used := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		used[b.Name] = true
	}
	if !used[prefix] {
		return prefix
	}
	for i := 1; ; i++ {
		n := fmt.Sprintf("%s%d", prefix, i)
		if !used[n] {
			return n
		}
	}
}

// FreshVarName returns a variable name with the given prefix that is not
// read or written anywhere in the function.
func (f *Function) FreshVarName(prefix string) string {
	used := make(map[string]bool)
	for _, p := range f.Params {
		used[p] = true
	}
	var scratch []string
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Defs(); d != "" {
				used[d] = true
			}
			scratch = in.UsedVars(scratch[:0])
			for _, v := range scratch {
				used[v] = true
			}
		}
		scratch = b.Term.UsedVars(scratch[:0])
		for _, v := range scratch {
			used[v] = true
		}
	}
	if !used[prefix] {
		return prefix
	}
	for i := 1; ; i++ {
		n := fmt.Sprintf("%s%d", prefix, i)
		if !used[n] {
			return n
		}
	}
}

// Vars returns every variable the function mentions (params, defs, uses) in
// sorted order.
func (f *Function) Vars() []string {
	set := make(map[string]bool)
	for _, p := range f.Params {
		set[p] = true
	}
	var scratch []string
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Defs(); d != "" {
				set[d] = true
			}
			scratch = in.UsedVars(scratch[:0])
			for _, v := range scratch {
				set[v] = true
			}
		}
		scratch = b.Term.UsedVars(scratch[:0])
		for _, v := range scratch {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// NumInstrs returns the total statement count across all blocks,
// terminators excluded.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Clone returns a deep copy of the function. The copy shares no mutable
// state with the original and has fresh predecessor lists.
func (f *Function) Clone() *Function {
	g := &Function{Name: f.Name, Params: append([]string(nil), f.Params...)}
	m := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name, ID: b.ID, Instrs: append([]Instr(nil), b.Instrs...)}
		g.Blocks = append(g.Blocks, nb)
		m[b] = nb
	}
	for _, b := range f.Blocks {
		nb := m[b]
		nb.Term = b.Term
		if b.Term.Then != nil {
			nb.Term.Then = m[b.Term.Then]
		}
		if b.Term.Else != nil {
			nb.Term.Else = m[b.Term.Else]
		}
	}
	g.Recompute()
	return g
}

// String renders the function in the textual IR syntax accepted by the
// textir parser, so printing and parsing round-trip.
func (f *Function) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
		fmt.Fprintf(&b, "  %s\n", blk.Term)
	}
	b.WriteString("}\n")
	return b.String()
}
