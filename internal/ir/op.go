// Package ir defines the three-address intermediate representation the
// reproduction works on: functions of basic blocks holding elementary
// statements of the form v = a ⊕ b, exactly the single-operator expression
// model of the Lazy Code Motion paper (Knoop, Rüthing & Steffen, PLDI 1992).
//
// The representation is deliberately not SSA: PRE in the paper's setting
// operates on lexical expressions over mutable variables, with transparency
// and local computation predicates derived per statement.
package ir

import "fmt"

// Op is a binary operator of a candidate expression.
type Op int

// The operator universe. All operators are binary; this matches the paper's
// single-operator expression model.
const (
	Add Op = iota
	Sub
	Mul
	Div
	Mod
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	numOps
)

var opNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
}

// String returns the operator's source form, e.g. "+".
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Valid reports whether o is a defined operator.
func (o Op) Valid() bool { return o >= 0 && o < numOps }

// OpFromString returns the operator with the given source form.
func OpFromString(s string) (Op, bool) {
	for i, n := range opNames {
		if n == s {
			return Op(i), true
		}
	}
	return 0, false
}

// Ops returns all defined operators in a fixed order.
func Ops() []Op {
	out := make([]Op, numOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// Eval applies the operator to two integer values. Division and modulus by
// zero evaluate to 0 rather than faulting: the interpreter must be total so
// that random programs always terminate with a defined result, and the
// transformation must preserve that defined result.
func (o Op) Eval(a, b int64) int64 {
	switch o {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case Eq:
		return b2i(a == b)
	case Ne:
		return b2i(a != b)
	case Lt:
		return b2i(a < b)
	case Le:
		return b2i(a <= b)
	case Gt:
		return b2i(a > b)
	case Ge:
		return b2i(a >= b)
	}
	panic(fmt.Sprintf("ir: invalid operator %d", int(o)))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
