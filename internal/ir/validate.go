package ir

import "fmt"

// Validate checks structural well-formedness:
//
//   - the function has at least one block and unique block names;
//   - every terminator target is a block of this function;
//   - block IDs are dense and match Blocks order (Recompute has run);
//   - every block is reachable from entry, and from every reachable block
//     some Ret is reachable (the paper's model requires every node to lie on
//     a path from entry to exit);
//   - variable and block names are non-empty, instruction fields are
//     consistent with their kinds.
func (f *Function) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: function %s has no blocks", f.Name)
	}
	names := make(map[string]bool, len(f.Blocks))
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for i, b := range f.Blocks {
		if b == nil {
			return fmt.Errorf("ir: function %s has nil block at %d", f.Name, i)
		}
		if b.Name == "" {
			return fmt.Errorf("ir: function %s has unnamed block at %d", f.Name, i)
		}
		if names[b.Name] {
			return fmt.Errorf("ir: function %s has duplicate block %q", f.Name, b.Name)
		}
		names[b.Name] = true
		if b.ID != i {
			return fmt.Errorf("ir: function %s block %q has stale ID %d (want %d); call Recompute", f.Name, b.Name, b.ID, i)
		}
		inFunc[b] = true
	}
	for _, p := range f.Params {
		if p == "" {
			return fmt.Errorf("ir: function %s has empty parameter name", f.Name)
		}
	}
	for _, b := range f.Blocks {
		for j, in := range b.Instrs {
			if err := validateInstr(in); err != nil {
				return fmt.Errorf("ir: %s.%s[%d]: %w", f.Name, b.Name, j, err)
			}
		}
		switch b.Term.Kind {
		case Jump:
			if !inFunc[b.Term.Then] {
				return fmt.Errorf("ir: %s.%s jumps outside function", f.Name, b.Name)
			}
		case Branch:
			if !inFunc[b.Term.Then] || !inFunc[b.Term.Else] {
				return fmt.Errorf("ir: %s.%s branches outside function", f.Name, b.Name)
			}
		case Ret:
		default:
			return fmt.Errorf("ir: %s.%s has invalid terminator kind %d", f.Name, b.Name, int(b.Term.Kind))
		}
	}

	// Reachability from entry.
	reach := make([]bool, len(f.Blocks))
	var stack []*Block
	push := func(b *Block) {
		if !reach[b.ID] {
			reach[b.ID] = true
			stack = append(stack, b)
		}
	}
	push(f.Entry())
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, n := 0, b.NumSuccs(); i < n; i++ {
			push(b.Succ(i))
		}
	}
	for _, b := range f.Blocks {
		if !reach[b.ID] {
			return fmt.Errorf("ir: %s.%s is unreachable from entry", f.Name, b.Name)
		}
	}

	// Co-reachability: a Ret must be reachable from every block. Compute
	// the set of blocks that reach a Ret by reverse flooding.
	coreach := make([]bool, len(f.Blocks))
	stack = stack[:0]
	for _, b := range f.Blocks {
		if b.Term.Kind == Ret {
			coreach[b.ID] = true
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds() {
			if !coreach[p.ID] {
				coreach[p.ID] = true
				stack = append(stack, p)
			}
		}
	}
	for _, b := range f.Blocks {
		if !coreach[b.ID] {
			return fmt.Errorf("ir: %s.%s cannot reach any return", f.Name, b.Name)
		}
	}
	return nil
}

// Validate is the invariant checker the hardened pipeline runs between
// passes. It performs every check of (*Function).Validate and additionally
// cross-checks the cached predecessor lists against the actual terminator
// edges — the stale state left behind when a pass mutates the CFG and
// forgets to call Recompute. Keeping the stricter check out of the method
// lets builders validate half-wired functions; the pipeline always demands
// full consistency.
func Validate(f *Function) error {
	if f == nil {
		return fmt.Errorf("ir: nil function")
	}
	if err := f.Validate(); err != nil {
		return err
	}
	// Recount edges: every successor edge must appear exactly once in the
	// target's predecessor list, and no predecessor list may hold an edge
	// that no terminator justifies.
	want := make(map[[2]int]int) // (pred ID, succ ID) -> multiplicity
	for _, b := range f.Blocks {
		for i, n := 0, b.NumSuccs(); i < n; i++ {
			want[[2]int{b.ID, b.Succ(i).ID}]++
		}
	}
	got := make(map[[2]int]int, len(want))
	for _, b := range f.Blocks {
		for _, p := range b.Preds() {
			if p == nil {
				return fmt.Errorf("ir: %s.%s has nil predecessor entry", f.Name, b.Name)
			}
			got[[2]int{p.ID, b.ID}]++
		}
	}
	for e, n := range want {
		if got[e] != n {
			return fmt.Errorf("ir: %s: edge %s->%s appears %d times in terminators but %d times in predecessor lists; call Recompute",
				f.Name, f.Blocks[e[0]].Name, f.Blocks[e[1]].Name, n, got[e])
		}
	}
	for e, n := range got {
		if want[e] != n {
			return fmt.Errorf("ir: %s: predecessor list of %s claims %d edges from %s but terminators provide %d; call Recompute",
				f.Name, f.Blocks[e[1]].Name, n, f.Blocks[e[0]].Name, want[e])
		}
	}
	return nil
}

func validateInstr(in Instr) error {
	switch in.Kind {
	case BinOp:
		if in.Dst == "" {
			return fmt.Errorf("binop with empty destination")
		}
		if !in.Op.Valid() {
			return fmt.Errorf("binop with invalid operator %d", int(in.Op))
		}
	case Copy:
		if in.Dst == "" {
			return fmt.Errorf("copy with empty destination")
		}
	case Print, Nop:
	default:
		return fmt.Errorf("invalid instruction kind %d", int(in.Kind))
	}
	return nil
}
