package ir

import (
	"strings"
	"testing"
)

// diamond builds the canonical partially-redundant diamond:
//
//	entry: br c then else
//	then:  x = a + b
//	else:  (nothing)
//	join:  y = a + b; ret y
func diamond(t *testing.T) *Function {
	t.Helper()
	f, err := NewBuilder("diamond", "a", "b", "c").
		Block("entry").Branch(Var("c"), "then", "else").
		Block("then").BinOp("x", Add, Var("a"), Var("b")).Jump("join").
		Block("else").Jump("join").
		Block("join").BinOp("y", Add, Var("a"), Var("b")).Ret(Var("y")).
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{Add, 2, 3, 5},
		{Sub, 2, 3, -1},
		{Mul, 4, 3, 12},
		{Div, 7, 2, 3},
		{Div, 7, 0, 0},
		{Mod, 7, 4, 3},
		{Mod, 7, 0, 0},
		{Eq, 3, 3, 1},
		{Eq, 3, 4, 0},
		{Ne, 3, 4, 1},
		{Lt, 1, 2, 1},
		{Le, 2, 2, 1},
		{Gt, 2, 1, 1},
		{Ge, 1, 2, 0},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %d, want %d", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpStringRoundTrip(t *testing.T) {
	for _, op := range Ops() {
		got, ok := OpFromString(op.String())
		if !ok || got != op {
			t.Errorf("OpFromString(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpFromString("**"); ok {
		t.Error("OpFromString accepted bogus operator")
	}
	if Op(99).String() == "" {
		t.Error("out-of-range Op has empty String")
	}
	if Op(99).Valid() {
		t.Error("Op(99) claims valid")
	}
}

func TestOperands(t *testing.T) {
	v := Var("x")
	c := Const(-7)
	if !v.IsVar() || v.IsConst() || v.String() != "x" {
		t.Errorf("Var misbehaves: %+v", v)
	}
	if !c.IsConst() || c.IsVar() || c.String() != "-7" {
		t.Errorf("Const misbehaves: %+v", c)
	}
	if !v.Uses("x") || v.Uses("y") || c.Uses("x") {
		t.Error("Uses misbehaves")
	}
}

func TestVarEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Var(\"\") did not panic")
		}
	}()
	Var("")
}

func TestExpr(t *testing.T) {
	e := Expr{Op: Add, A: Var("a"), B: Const(1)}
	if e.String() != "a + 1" {
		t.Errorf("Expr.String = %q", e.String())
	}
	if !e.UsesVar("a") || e.UsesVar("b") {
		t.Error("UsesVar misbehaves")
	}
	vs := e.Vars(nil)
	if len(vs) != 1 || vs[0] != "a" {
		t.Errorf("Vars = %v", vs)
	}
	// Expr must be usable as a map key.
	m := map[Expr]int{e: 1}
	if m[Expr{Op: Add, A: Var("a"), B: Const(1)}] != 1 {
		t.Error("Expr not comparable by value")
	}
}

func TestInstrAccessors(t *testing.T) {
	bin := NewBinOp("x", Mul, Var("a"), Var("b"))
	if e, ok := bin.Expr(); !ok || e.String() != "a * b" {
		t.Errorf("Expr() = %v, %v", e, ok)
	}
	if bin.Defs() != "x" {
		t.Errorf("Defs = %q", bin.Defs())
	}
	if got := bin.UsedVars(nil); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("UsedVars = %v", got)
	}
	cp := NewCopy("y", Const(3))
	if _, ok := cp.Expr(); ok {
		t.Error("Copy has an Expr")
	}
	if cp.Defs() != "y" || len(cp.UsedVars(nil)) != 0 {
		t.Error("Copy accessors wrong")
	}
	pr := NewPrint(Var("z"))
	if pr.Defs() != "" || len(pr.UsedVars(nil)) != 1 {
		t.Error("Print accessors wrong")
	}
	if NewNop().String() != "nop" {
		t.Error("Nop string")
	}
	if bin.String() != "x = a * b" {
		t.Errorf("BinOp string = %q", bin.String())
	}
	if cp.String() != "y = 3" {
		t.Errorf("Copy string = %q", cp.String())
	}
	if pr.String() != "print z" {
		t.Errorf("Print string = %q", pr.String())
	}
}

func TestBuilderDiamond(t *testing.T) {
	f := diamond(t)
	if f.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d", f.NumBlocks())
	}
	entry := f.Entry()
	if entry.Name != "entry" || entry.NumSuccs() != 2 {
		t.Fatalf("entry wrong: %v", entry)
	}
	join := f.BlockByName("join")
	if len(join.Preds()) != 2 {
		t.Fatalf("join preds = %d", len(join.Preds()))
	}
	if got := f.BlockByName("then").Succ(0); got != join {
		t.Fatalf("then succ = %v", got)
	}
	if f.NumInstrs() != 2 {
		t.Fatalf("NumInstrs = %d", f.NumInstrs())
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("f").Block("a").Jump("nowhere").Finish(); err == nil {
		t.Error("undefined jump target accepted")
	}
	if _, err := NewBuilder("f").Block("a").Finish(); err == nil {
		t.Error("missing terminator accepted")
	}
	if _, err := NewBuilder("f").Block("a").RetVoid().Block("a").RetVoid().Finish(); err == nil {
		t.Error("duplicate block accepted")
	}
	if _, err := NewBuilder("f").Block("a").RetVoid().Block("b").RetVoid().Finish(); err == nil {
		t.Error("unreachable block accepted")
	}
	bd := NewBuilder("f").Block("a").RetVoid()
	bd.Copy("x", Const(1)) // statement after terminator
	if _, err := bd.Finish(); err == nil {
		t.Error("statement after terminator accepted")
	}
	if _, err := NewBuilder("f").Block("a").Branch(Var("c"), "a", "missing").Finish(); err == nil {
		t.Error("branch to undefined block accepted")
	}
}

func TestMustFinishPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFinish did not panic on invalid function")
		}
	}()
	NewBuilder("f").Block("a").Jump("nowhere").MustFinish()
}

func TestValidateInfiniteLoopRejected(t *testing.T) {
	// A loop with no path to ret violates the paper's model.
	bd := NewBuilder("f").
		Block("entry").Jump("loop").
		Block("loop").Jump("loop")
	if _, err := bd.Finish(); err == nil || !strings.Contains(err.Error(), "cannot reach any return") {
		t.Errorf("infinite loop accepted: %v", err)
	}
}

func TestValidateStaleID(t *testing.T) {
	f := diamond(t)
	f.Blocks[1], f.Blocks[2] = f.Blocks[2], f.Blocks[1]
	if err := f.Validate(); err == nil {
		t.Error("stale IDs accepted")
	}
	f.Recompute()
	if err := f.Validate(); err != nil {
		t.Errorf("Validate after Recompute: %v", err)
	}
}

func TestFreshNames(t *testing.T) {
	f := diamond(t)
	if got := f.FreshBlockName("split"); got != "split" {
		t.Errorf("FreshBlockName = %q", got)
	}
	if got := f.FreshBlockName("join"); got == "join" {
		t.Error("FreshBlockName returned used name")
	}
	if got := f.FreshVarName("h"); got != "h" {
		t.Errorf("FreshVarName = %q", got)
	}
	if got := f.FreshVarName("a"); got == "a" {
		t.Error("FreshVarName returned used name")
	}
	if got := f.FreshVarName("x"); got == "x" {
		t.Error("FreshVarName returned defined name")
	}
}

func TestVars(t *testing.T) {
	f := diamond(t)
	got := strings.Join(f.Vars(), ",")
	if got != "a,b,c,x,y" {
		t.Errorf("Vars = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := diamond(t)
	g := f.Clone()
	if g.String() != f.String() {
		t.Fatalf("clone differs:\n%s\nvs\n%s", g, f)
	}
	g.BlockByName("then").Instrs[0] = NewCopy("x", Const(0))
	if f.String() == g.String() {
		t.Fatal("clone shares instruction storage")
	}
	// Clone terminators must point at clone blocks.
	for _, b := range g.Blocks {
		for i, n := 0, b.NumSuccs(); i < n; i++ {
			s := b.Succ(i)
			if f.BlockByName(s.Name) == s {
				t.Fatal("clone terminator points into original")
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAt(t *testing.T) {
	b := &Block{Name: "b"}
	b.Append(NewCopy("x", Const(1)))
	b.Append(NewCopy("y", Const(2)))
	b.InsertAt(1, NewNop())
	if len(b.Instrs) != 3 || b.Instrs[1].Kind != Nop {
		t.Fatalf("InsertAt middle: %v", b.Instrs)
	}
	b.InsertAt(0, NewPrint(Const(9)))
	if b.Instrs[0].Kind != Print {
		t.Fatal("InsertAt front")
	}
	b.InsertAt(len(b.Instrs), NewNop())
	if b.Instrs[len(b.Instrs)-1].Kind != Nop {
		t.Fatal("InsertAt end")
	}
}

func TestSetSucc(t *testing.T) {
	f := diamond(t)
	entry := f.Entry()
	then := f.BlockByName("then")
	entry.SetSucc(1, then) // both arms to then
	f.Recompute()
	if entry.Succ(1) != then {
		t.Fatal("SetSucc failed")
	}
	if len(then.Preds()) != 1 { // one pred block, even with two edges? No: preds lists blocks per edge
		// Recompute appends per edge, so then has entry twice.
		t.Logf("preds = %d (per-edge semantics)", len(then.Preds()))
	}
}

func TestStringFormat(t *testing.T) {
	f := diamond(t)
	s := f.String()
	for _, want := range []string{
		"func diamond(a, b, c) {",
		"entry:",
		"  br c then else",
		"  x = a + b",
		"  jmp join",
		"  ret y",
		"}",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestTerminatorString(t *testing.T) {
	tm := Terminator{Kind: Ret}
	if tm.String() != "ret" {
		t.Errorf("bare ret = %q", tm.String())
	}
	tm = Terminator{Kind: Jump}
	if !strings.Contains(tm.String(), "<nil>") {
		t.Errorf("nil jump = %q", tm.String())
	}
}

func TestTerminatorUsedVars(t *testing.T) {
	br := Terminator{Kind: Branch, Cond: Var("c")}
	if got := br.UsedVars(nil); len(got) != 1 || got[0] != "c" {
		t.Errorf("branch UsedVars = %v", got)
	}
	rv := Terminator{Kind: Ret, HasVal: true, Val: Var("r")}
	if got := rv.UsedVars(nil); len(got) != 1 || got[0] != "r" {
		t.Errorf("ret UsedVars = %v", got)
	}
	if got := (Terminator{Kind: Ret}).UsedVars(nil); len(got) != 0 {
		t.Errorf("void ret UsedVars = %v", got)
	}
}
