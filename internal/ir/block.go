package ir

// Block is a basic block: a named, straight-line sequence of statements
// ended by exactly one terminator.
type Block struct {
	// Name is the block's label, unique within its function.
	Name string
	// ID is the block's dense index within its function, assigned by
	// Function.Renumber. Analyses index their state by ID.
	ID int
	// Instrs are the block's statements in execution order.
	Instrs []Instr
	// Term is the block's terminator.
	Term Terminator

	preds []*Block
}

// Succs returns the block's successors in terminator order (Then before
// Else). A Ret block has none. The returned slice is freshly allocated.
func (b *Block) Succs() []*Block {
	switch b.Term.Kind {
	case Jump:
		return []*Block{b.Term.Then}
	case Branch:
		return []*Block{b.Term.Then, b.Term.Else}
	}
	return nil
}

// NumSuccs returns the number of successors without allocating.
func (b *Block) NumSuccs() int {
	switch b.Term.Kind {
	case Jump:
		return 1
	case Branch:
		return 2
	}
	return 0
}

// Succ returns the i'th successor.
func (b *Block) Succ(i int) *Block {
	switch {
	case b.Term.Kind == Jump && i == 0:
		return b.Term.Then
	case b.Term.Kind == Branch && i == 0:
		return b.Term.Then
	case b.Term.Kind == Branch && i == 1:
		return b.Term.Else
	}
	panic("ir: successor index out of range")
}

// SetSucc replaces the i'th successor. Used by edge splitting.
func (b *Block) SetSucc(i int, s *Block) {
	switch {
	case b.Term.Kind == Jump && i == 0:
		b.Term.Then = s
	case b.Term.Kind == Branch && i == 0:
		b.Term.Then = s
	case b.Term.Kind == Branch && i == 1:
		b.Term.Else = s
	default:
		panic("ir: successor index out of range")
	}
}

// Preds returns the block's predecessors as computed by the owning
// function's Recompute. The slice is owned by the block; do not mutate.
func (b *Block) Preds() []*Block { return b.preds }

// InsertAt inserts instruction in before position i (0 ≤ i ≤ len(Instrs)).
func (b *Block) InsertAt(i int, in Instr) {
	if i < 0 || i > len(b.Instrs) {
		panic("ir: instruction insertion index out of range")
	}
	b.Instrs = append(b.Instrs, Instr{})
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Append appends an instruction at the end of the block.
func (b *Block) Append(in Instr) { b.Instrs = append(b.Instrs, in) }
