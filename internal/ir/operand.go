package ir

import (
	"fmt"
	"strconv"
)

// Operand is a variable reference or an integer literal.
type Operand struct {
	// Name is the variable name; empty for a constant operand.
	Name string
	// Value is the literal value when Name is empty.
	Value int64
}

// Var returns a variable operand.
func Var(name string) Operand {
	if name == "" {
		panic("ir: empty variable name")
	}
	return Operand{Name: name}
}

// Const returns a constant operand.
func Const(v int64) Operand { return Operand{Value: v} }

// IsVar reports whether the operand is a variable reference.
func (o Operand) IsVar() bool { return o.Name != "" }

// IsConst reports whether the operand is an integer literal.
func (o Operand) IsConst() bool { return o.Name == "" }

// Uses reports whether the operand reads variable v.
func (o Operand) Uses(v string) bool { return o.Name == v }

// String returns the operand's source form.
func (o Operand) String() string {
	if o.IsVar() {
		return o.Name
	}
	return strconv.FormatInt(o.Value, 10)
}

// Expr is a candidate expression: a single binary operator applied to two
// operands. Expressions are identified syntactically (no commutativity or
// algebraic normalization), following the paper's lexical model. Expr is a
// comparable value type and is used as a map key.
type Expr struct {
	Op   Op
	A, B Operand
}

// String returns the expression's source form, e.g. "a + b".
func (e Expr) String() string {
	return fmt.Sprintf("%s %s %s", e.A, e.Op, e.B)
}

// UsesVar reports whether the expression reads variable v.
func (e Expr) UsesVar(v string) bool { return e.A.Uses(v) || e.B.Uses(v) }

// Vars appends the variables the expression reads to dst and returns it.
func (e Expr) Vars(dst []string) []string {
	if e.A.IsVar() {
		dst = append(dst, e.A.Name)
	}
	if e.B.IsVar() {
		dst = append(dst, e.B.Name)
	}
	return dst
}
