package ir

import "fmt"

// Builder constructs functions programmatically. Blocks are referred to by
// name; terminator targets are resolved when Finish is called, so blocks may
// be targeted before they are declared. The first block declared is the
// entry block.
type Builder struct {
	fn   *Function
	cur  *Block
	errs []error
	// pending maps a block to its terminator's unresolved target names.
	pending map[*Block][2]string
	termSet map[*Block]bool
}

// NewBuilder starts a function with the given name and parameters.
func NewBuilder(name string, params ...string) *Builder {
	return &Builder{
		fn:      &Function{Name: name, Params: params},
		pending: make(map[*Block][2]string),
		termSet: make(map[*Block]bool),
	}
}

func (bd *Builder) errorf(format string, args ...any) {
	bd.errs = append(bd.errs, fmt.Errorf("builder %s: "+format, append([]any{bd.fn.Name}, args...)...))
}

// Block starts (or resumes) the block with the given name and makes it
// current. Declaring the same name twice is an error unless the block has
// no terminator yet.
func (bd *Builder) Block(name string) *Builder {
	if b := bd.fn.BlockByName(name); b != nil {
		if bd.termSet[b] {
			bd.errorf("block %q declared twice", name)
		}
		bd.cur = b
		return bd
	}
	bd.cur = bd.fn.AddBlock(name)
	return bd
}

func (bd *Builder) need() *Block {
	if bd.cur == nil {
		bd.errorf("statement before any block")
		bd.cur = bd.fn.AddBlock("entry")
	}
	if bd.termSet[bd.cur] {
		bd.errorf("statement after terminator in block %q", bd.cur.Name)
	}
	return bd.cur
}

// BinOp appends dst = a op b to the current block.
func (bd *Builder) BinOp(dst string, op Op, a, b Operand) *Builder {
	bd.need().Append(NewBinOp(dst, op, a, b))
	return bd
}

// Copy appends dst = src to the current block.
func (bd *Builder) Copy(dst string, src Operand) *Builder {
	bd.need().Append(NewCopy(dst, src))
	return bd
}

// Print appends print v to the current block.
func (bd *Builder) Print(v Operand) *Builder {
	bd.need().Append(NewPrint(v))
	return bd
}

// Nop appends a no-op to the current block.
func (bd *Builder) Nop() *Builder {
	bd.need().Append(NewNop())
	return bd
}

func (bd *Builder) setTerm(t Terminator, then, els string) {
	b := bd.need()
	if bd.errs != nil && bd.termSet[b] {
		return
	}
	b.Term = t
	bd.pending[b] = [2]string{then, els}
	bd.termSet[b] = true
	bd.cur = nil
}

// Jump ends the current block with jmp target.
func (bd *Builder) Jump(target string) *Builder {
	bd.setTerm(Terminator{Kind: Jump}, target, "")
	return bd
}

// Branch ends the current block with br cond then else.
func (bd *Builder) Branch(cond Operand, then, els string) *Builder {
	bd.setTerm(Terminator{Kind: Branch, Cond: cond}, then, els)
	return bd
}

// Ret ends the current block with ret v.
func (bd *Builder) Ret(v Operand) *Builder {
	bd.setTerm(Terminator{Kind: Ret, HasVal: true, Val: v}, "", "")
	return bd
}

// RetVoid ends the current block with a bare ret.
func (bd *Builder) RetVoid() *Builder {
	bd.setTerm(Terminator{Kind: Ret}, "", "")
	return bd
}

// Finish resolves targets, recomputes CFG metadata, validates, and returns
// the function. It returns an error if construction or validation failed.
func (bd *Builder) Finish() (*Function, error) {
	for b, tgt := range bd.pending {
		switch b.Term.Kind {
		case Jump:
			t := bd.fn.BlockByName(tgt[0])
			if t == nil {
				bd.errorf("block %q jumps to undefined block %q", b.Name, tgt[0])
				continue
			}
			b.Term.Then = t
		case Branch:
			t := bd.fn.BlockByName(tgt[0])
			e := bd.fn.BlockByName(tgt[1])
			if t == nil || e == nil {
				bd.errorf("block %q branches to undefined block", b.Name)
				continue
			}
			b.Term.Then, b.Term.Else = t, e
		}
	}
	for _, b := range bd.fn.Blocks {
		if !bd.termSet[b] {
			bd.errorf("block %q has no terminator", b.Name)
		}
	}
	if len(bd.errs) > 0 {
		return nil, bd.errs[0]
	}
	bd.fn.Recompute()
	if err := bd.fn.Validate(); err != nil {
		return nil, err
	}
	return bd.fn, nil
}

// MustFinish is Finish that panics on error; for tests and examples.
func (bd *Builder) MustFinish() *Function {
	f, err := bd.Finish()
	if err != nil {
		panic(err)
	}
	return f
}
