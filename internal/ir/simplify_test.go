package ir

import (
	"strings"
	"testing"
)

func TestSimplifyForwardsEmptyJumpBlock(t *testing.T) {
	f, err := NewBuilder("f", "c").
		Block("entry").Branch(Var("c"), "mid", "out").
		Block("mid").Jump("out").
		Block("out").RetVoid().
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	n := f.Simplify()
	if n != 1 {
		t.Fatalf("removed = %d, want 1\n%s", n, f)
	}
	if f.BlockByName("mid") != nil {
		t.Errorf("mid not removed:\n%s", f)
	}
	if f.Entry().Succ(0).Name != "out" || f.Entry().Succ(1).Name != "out" {
		t.Errorf("preds not retargeted:\n%s", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyMergesStraightLine(t *testing.T) {
	f, err := NewBuilder("f", "a").
		Block("one").Copy("x", Var("a")).Jump("two").
		Block("two").Copy("y", Var("x")).Jump("three").
		Block("three").Ret(Var("y")).
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	n := f.Simplify()
	if n != 2 {
		t.Fatalf("removed = %d, want 2\n%s", n, f)
	}
	if f.NumBlocks() != 1 {
		t.Fatalf("blocks = %d\n%s", f.NumBlocks(), f)
	}
	e := f.Entry()
	if len(e.Instrs) != 2 || e.Term.Kind != Ret {
		t.Errorf("merge wrong:\n%s", f)
	}
}

func TestSimplifyKeepsEntry(t *testing.T) {
	// Entry is an empty jump block: it must not be removed.
	f, err := NewBuilder("f").
		Block("entry").Jump("body").
		Block("body").Copy("x", Const(1)).RetVoid().
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Simplify()
	if f.Entry().Name != "entry" && f.NumBlocks() > 1 {
		t.Errorf("entry mishandled:\n%s", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyKeepsNonEmptyForwarders(t *testing.T) {
	f, err := NewBuilder("f", "c").
		Block("entry").Branch(Var("c"), "mid", "out").
		Block("mid").Copy("x", Const(1)).Jump("out").
		Block("out").RetVoid().
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	if n := f.Simplify(); n != 0 {
		t.Fatalf("removed %d blocks from an unsimplifiable CFG\n%s", n, f)
	}
}

func TestSimplifyLoop(t *testing.T) {
	// A loop through an empty latch block: the latch is forwarded, the
	// back edge retargeted to the header.
	f, err := NewBuilder("f", "c").
		Block("entry").Jump("head").
		Block("head").Branch(Var("c"), "latch", "out").
		Block("latch").Jump("head").
		Block("out").RetVoid().
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Simplify()
	if err := f.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	head := f.BlockByName("head")
	if head == nil || head.Succ(0) != head {
		t.Errorf("self back edge not formed:\n%s", f)
	}
}

func TestSimplifyDoesNotMergeLoopHeader(t *testing.T) {
	// b jumps to a header with two preds: no merge.
	f, err := NewBuilder("f", "c").
		Block("entry").Copy("x", Const(0)).Jump("head").
		Block("head").Copy("x", Var("x")).Branch(Var("c"), "head", "out").
		Block("out").RetVoid().
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	before := f.NumBlocks()
	f.Simplify()
	if f.NumBlocks() != before {
		t.Errorf("loop header merged:\n%s", f)
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	f, err := NewBuilder("f", "c").
		Block("entry").Branch(Var("c"), "a", "b").
		Block("a").Jump("join").
		Block("b").Jump("join").
		Block("join").Copy("x", Const(1)).Jump("tail").
		Block("tail").RetVoid().
		Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Simplify()
	s := f.String()
	if n := f.Simplify(); n != 0 || f.String() != s {
		t.Errorf("Simplify not idempotent (removed %d more):\n%s", n, f)
	}
}

func TestSimplifyChainCollapse(t *testing.T) {
	bd := NewBuilder("f")
	bd.Block("entry").Jump("c1")
	for i := 1; i <= 5; i++ {
		bd.Block(blockN(i)).Jump(blockN(i + 1))
	}
	bd.Block(blockN(6)).RetVoid()
	f, err := bd.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Simplify()
	if f.NumBlocks() != 1 {
		t.Errorf("chain not collapsed: %d blocks\n%s", f.NumBlocks(), f)
	}
	if !strings.Contains(f.String(), "ret") {
		t.Errorf("terminator lost:\n%s", f)
	}
}

func blockN(i int) string {
	return "c" + string(rune('0'+i))
}
