package ir

import "fmt"

// InstrKind discriminates the elementary statement forms.
type InstrKind int

const (
	// BinOp is v = a ⊕ b, the only statement form that computes a candidate
	// expression.
	BinOp InstrKind = iota
	// Copy is v = a for a variable or constant a.
	Copy
	// Print emits the value of its operand; it is the observable effect the
	// interpreter compares across transformations.
	Print
	// Nop does nothing. Synthetic blocks created by critical-edge splitting
	// and code-motion insertions start out as Nops in some intermediate
	// states; Nops are also legal input.
	Nop
)

// String names the instruction kind.
func (k InstrKind) String() string {
	switch k {
	case BinOp:
		return "binop"
	case Copy:
		return "copy"
	case Print:
		return "print"
	case Nop:
		return "nop"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Instr is one elementary statement.
type Instr struct {
	Kind InstrKind
	// Dst is the assigned variable for BinOp and Copy.
	Dst string
	// Op is the operator for BinOp.
	Op Op
	// A is the first operand for BinOp, the source for Copy, and the
	// printed value for Print.
	A Operand
	// B is the second operand for BinOp.
	B Operand
}

// NewBinOp returns the statement dst = a op b.
func NewBinOp(dst string, op Op, a, b Operand) Instr {
	return Instr{Kind: BinOp, Dst: dst, Op: op, A: a, B: b}
}

// NewCopy returns the statement dst = src.
func NewCopy(dst string, src Operand) Instr {
	return Instr{Kind: Copy, Dst: dst, A: src}
}

// NewPrint returns the statement print v.
func NewPrint(v Operand) Instr { return Instr{Kind: Print, A: v} }

// NewNop returns a no-op statement.
func NewNop() Instr { return Instr{Kind: Nop} }

// Expr returns the candidate expression the instruction computes and true,
// or a zero Expr and false if the instruction computes none. Only BinOp
// statements compute candidate expressions.
func (in Instr) Expr() (Expr, bool) {
	if in.Kind != BinOp {
		return Expr{}, false
	}
	return Expr{Op: in.Op, A: in.A, B: in.B}, true
}

// Defs returns the variable the instruction assigns, or "" if none.
func (in Instr) Defs() string {
	if in.Kind == BinOp || in.Kind == Copy {
		return in.Dst
	}
	return ""
}

// UsedVars appends the variables the instruction reads to dst and returns it.
func (in Instr) UsedVars(dst []string) []string {
	switch in.Kind {
	case BinOp:
		if in.A.IsVar() {
			dst = append(dst, in.A.Name)
		}
		if in.B.IsVar() {
			dst = append(dst, in.B.Name)
		}
	case Copy, Print:
		if in.A.IsVar() {
			dst = append(dst, in.A.Name)
		}
	}
	return dst
}

// String returns the statement's source form.
func (in Instr) String() string {
	switch in.Kind {
	case BinOp:
		return fmt.Sprintf("%s = %s %s %s", in.Dst, in.A, in.Op, in.B)
	case Copy:
		return fmt.Sprintf("%s = %s", in.Dst, in.A)
	case Print:
		return fmt.Sprintf("print %s", in.A)
	case Nop:
		return "nop"
	}
	return fmt.Sprintf("<invalid instr kind %d>", int(in.Kind))
}

// TermKind discriminates block terminators.
type TermKind int

const (
	// Jump transfers to a single successor.
	Jump TermKind = iota
	// Branch transfers to Then if Cond is nonzero, else to Else.
	Branch
	// Ret ends the function, optionally yielding a value.
	Ret
)

// Terminator ends a basic block.
type Terminator struct {
	Kind TermKind
	// Cond is the branch condition (Branch only).
	Cond Operand
	// Then and Else are the successors: Jump uses Then only.
	Then, Else *Block
	// HasVal reports whether Ret carries a value.
	HasVal bool
	// Val is the returned value when HasVal (Ret only).
	Val Operand
}

// UsedVars appends the variables the terminator reads to dst and returns it.
func (t Terminator) UsedVars(dst []string) []string {
	if t.Kind == Branch && t.Cond.IsVar() {
		dst = append(dst, t.Cond.Name)
	}
	if t.Kind == Ret && t.HasVal && t.Val.IsVar() {
		dst = append(dst, t.Val.Name)
	}
	return dst
}

// String returns the terminator's source form.
func (t Terminator) String() string {
	switch t.Kind {
	case Jump:
		return fmt.Sprintf("jmp %s", blockName(t.Then))
	case Branch:
		return fmt.Sprintf("br %s %s %s", t.Cond, blockName(t.Then), blockName(t.Else))
	case Ret:
		if t.HasVal {
			return fmt.Sprintf("ret %s", t.Val)
		}
		return "ret"
	}
	return fmt.Sprintf("<invalid terminator kind %d>", int(t.Kind))
}

func blockName(b *Block) string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}
